(** Benchmark suite: the paper's kernels bound to the Table 4 datasets,
    with runners that evaluate every platform model.

    Datasets are generated deterministically (see
    {!Stardust_workloads.Datasets}) and memoised across experiments —
    several kernels share the same matrices.  Each kernel instance is
    compiled once and then costed on: Capstan with ideal network+memory,
    HBM2E, and DDR4 (via {!Stardust_capstan.Sim.estimate}); the 128-thread
    CPU model; and the V100 GPU model. *)

module T = Stardust_tensor.Tensor
module F = Stardust_tensor.Format
module K = Stardust_core.Kernels
module C = Stardust_core.Compile
module Plan = Stardust_core.Plan
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram
module Resources = Stardust_capstan.Resources
module Profile = Stardust_vonneumann.Profile
module Cpu_model = Stardust_vonneumann.Cpu_model
module Gpu_model = Stardust_vonneumann.Gpu_model
module D = Stardust_workloads.Datasets
module Coo = Stardust_tensor.Coo

(* -------------------------------------------------------------------- *)
(* Dataset registry (memoised)                                           *)
(* -------------------------------------------------------------------- *)

let cache : (string, T.t) Hashtbl.t = Hashtbl.create 32

let memo key f =
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let t = f () in
      Hashtbl.add cache key t;
      t

(** Dense factor rank used for SDDMM/TTM/MTTKRP side matrices (the paper
    leaves it unstated; 32-64 is the usual factorisation rank). *)
let sddmm_rank = 64
let factor_rank = 32

let bcsstk30 fmt_tag fmt =
  memo ("bcsstk30/" ^ fmt_tag) (fun () -> D.bcsstk30_like ~format:fmt ())

let ckt11752 fmt_tag fmt =
  memo ("ckt11752/" ^ fmt_tag) (fun () -> D.ckt11752_like ~format:fmt ())

let trefethen fmt_tag fmt =
  memo ("trefethen/" ^ fmt_tag) (fun () -> D.trefethen_like ~format:fmt ())

let suitesparse fmt_tag fmt =
  [
    ("bcsstk30", fun () -> bcsstk30 fmt_tag fmt);
    ("ckt11752_dc_1", fun () -> ckt11752 fmt_tag fmt);
    ("Trefethen_20000", fun () -> trefethen fmt_tag fmt);
  ]

let facebook () = memo "facebook" (fun () -> D.facebook_like ~format:(F.csf 3) ())

let plus_matrix d =
  memo (Printf.sprintf "plusmat/%g" d) (fun () ->
      D.random_matrix ~name:"B" ~format:(F.csr ()) ~rows:800 ~cols:800
        ~density:d ())

let rand3 d =
  memo (Printf.sprintf "rand3/%g" d) (fun () ->
      D.random_tensor3 ~name:"B" ~format:(F.ucc ()) ~dims:[ 200; 200; 200 ]
        ~density:d ())

let densities = [ 0.01; 0.10; 0.50 ]

(** One benchmark instance: a named dataset binding for a kernel's inputs
    (stage-1 inputs; later stages consume earlier results). *)
type instance = { dname : string; inputs : (string * T.t) list }

let instances (spec : K.spec) : instance list =
  match spec.K.kname with
  | "SpMV" ->
      List.map
        (fun (dn, m) ->
          let a = m () in
          { dname = dn;
            inputs =
              [ ("A", T.rename "A" a);
                ("x", D.dense_vector ~name:"x" ~dim:(T.dim a 1) ()) ] })
        (suitesparse "csr" (F.csr ()))
  | "SDDMM" ->
      List.map
        (fun (dn, m) ->
          let b = m () in
          { dname = dn;
            inputs =
              [ ("B", T.rename "B" b);
                ("C",
                 D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:(T.dim b 0)
                   ~cols:sddmm_rank ());
                ("D",
                 D.dense_matrix ~seed:5 ~name:"D" ~format:(F.rm ())
                   ~rows:(T.dim b 1) ~cols:sddmm_rank ()) ] })
        (suitesparse "csr" (F.csr ()))
  | "MatTransMul" ->
      List.map
        (fun (dn, m) ->
          let a = m () in
          { dname = dn;
            inputs =
              [ ("A", T.rename "A" a);
                ("x", D.dense_vector ~name:"x" ~dim:(T.dim a 0) ());
                ("z", D.dense_vector ~seed:6 ~name:"z" ~dim:(T.dim a 1) ()) ] })
        (suitesparse "csc" (F.csc ()))
  | "Residual" ->
      List.map
        (fun (dn, m) ->
          let a = m () in
          { dname = dn;
            inputs =
              [ ("A", T.rename "A" a);
                ("x", D.dense_vector ~name:"x" ~dim:(T.dim a 1) ());
                ("b", D.dense_vector ~seed:8 ~name:"b" ~dim:(T.dim a 0) ()) ] })
        (suitesparse "csr" (F.csr ()))
  | "Plus3" ->
      List.map
        (fun d ->
          let b = plus_matrix d in
          { dname = Printf.sprintf "random-%g%%" (100. *. d);
            inputs =
              [ ("B", T.rename "B" b);
                ("C", D.rotate_cols ~by:1 ~name:"C" b);
                ("D", D.rotate_cols ~by:2 ~name:"D" b) ] })
        densities
  | "TTV" ->
      let b = facebook () in
      [ { dname = "facebook";
          inputs =
            [ ("B", T.rename "B" b);
              ("c", D.dense_vector ~name:"c" ~dim:(T.dim b 2) ()) ] } ]
  | "TTM" ->
      let b = facebook () in
      [ { dname = "facebook";
          inputs =
            [ ("B", T.rename "B" b);
              ("C",
               D.dense_matrix ~name:"C" ~format:(F.cm ()) ~rows:factor_rank
                 ~cols:(T.dim b 2) ()) ] } ]
  | "MTTKRP" ->
      let b = facebook () in
      [ { dname = "facebook";
          inputs =
            [ ("B", T.rename "B" b);
              ("C",
               D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:(T.dim b 1)
                 ~cols:factor_rank ());
              ("D",
               D.dense_matrix ~seed:9 ~name:"D" ~format:(F.rm ())
                 ~rows:(T.dim b 2) ~cols:factor_rank ()) ] } ]
  | "InnerProd" | "Plus2" ->
      List.map
        (fun d ->
          let b = rand3 d in
          { dname = Printf.sprintf "random-%g%%" (100. *. d);
            inputs =
              [ ("B", T.rename "B" b); ("C", D.rotate_even_last ~name:"C" b) ]
          })
        densities
  | k -> failwith ("no datasets for kernel " ^ k)

(* -------------------------------------------------------------------- *)
(* Stage composition                                                     *)
(* -------------------------------------------------------------------- *)

(** Sparse element-wise sum — used to materialise multi-stage
    intermediates (Plus3's [T = B + C]) without running a backend. *)
let sparse_add ~name ~format a b =
  let coo = Coo.create (T.dims a) in
  T.iter_nonzeros (fun c v -> Coo.add coo c v) a;
  T.iter_nonzeros (fun c v -> Coo.add coo c v) b;
  T.of_coo ~name ~format coo

(** Inputs for a given stage, given the instance pool (stage results are
    computed directly for composition). *)
let stage_inputs (st : K.stage) pool =
  List.filter_map
    (fun (n, _) ->
      if n = st.K.result then None
      else Option.map (fun t -> (n, T.rename n t)) (List.assoc_opt n pool))
    st.K.formats

(* -------------------------------------------------------------------- *)
(* Platforms                                                             *)
(* -------------------------------------------------------------------- *)

type platform =
  | Capstan_ideal
  | Capstan_hbm2e
  | Capstan_ddr4
  | Cpu128
  | Gpu_v100

let all_platforms = [ Capstan_ideal; Capstan_hbm2e; Capstan_ddr4; Cpu128; Gpu_v100 ]

let platform_name = function
  | Capstan_ideal -> "Capstan (Ideal Net & Mem)"
  | Capstan_hbm2e -> "Capstan (HBM2E)"
  | Capstan_ddr4 -> "Capstan (DDR4)"
  | Cpu128 -> "128-Thread CPU"
  | Gpu_v100 -> "V100 GPU"

let capstan_config = function
  | Capstan_ideal -> Sim.ideal_config
  | Capstan_hbm2e -> Sim.default_config
  | Capstan_ddr4 -> { Sim.arch = Arch.default; dram = Dram.ddr4 }
  | _ -> invalid_arg "not a Capstan platform"

(** The TACO baselines compile the {e default} schedule (canonical
    concretization, no accelerator commands), so the CPU/GPU models profile
    a default-schedule plan rather than the Capstan-scheduled one. *)
let default_profile (st : K.stage) ~inputs =
  let a = Stardust_ir.Parser.parse_assign st.K.expr in
  let sched = Stardust_schedule.Schedule.of_assign ~formats:st.K.formats a in
  let sched =
    match st.K.baseline_reorder with
    | Some order -> Stardust_schedule.Schedule.reorder sched order
    | None -> sched
  in
  let plan = Plan.build sched ~inputs in
  Profile.of_plan plan ~inputs

(** Seconds on one platform for one compiled stage. *)
let stage_seconds ?baseline_profile platform (compiled : C.compiled) =
  let profile () =
    match baseline_profile with
    | Some p -> p
    | None -> Profile.of_plan compiled.C.plan ~inputs:compiled.C.inputs
  in
  match platform with
  | Capstan_ideal | Capstan_hbm2e | Capstan_ddr4 ->
      (Sim.estimate ~config:(capstan_config platform) compiled).Sim.seconds
  | Cpu128 -> (Cpu_model.run (profile ())).Cpu_model.seconds
  | Gpu_v100 -> (Gpu_model.run (profile ())).Gpu_model.seconds

(** Results of one kernel on one dataset instance. *)
type run = {
  spec : K.spec;
  instance : string;
  seconds : (platform * float) list;  (** summed over stages *)
  compiled : C.compiled list;  (** per stage, on this instance *)
}

let run_instance (spec : K.spec) (inst : instance) : run =
  let pool = ref inst.inputs in
  let compiled_stages =
    List.map
      (fun (st : K.stage) ->
        let inputs = stage_inputs st !pool in
        let compiled = K.compile_stage spec st ~inputs in
        let baseline = default_profile st ~inputs in
        (* Materialise the stage result for downstream stages. *)
        (if List.length spec.K.stages > 1 then
           match st.K.expr with
           | _ ->
               let parsed = Stardust_ir.Parser.parse_assign st.K.expr in
               let rhs_tensors = Stardust_ir.Ast.tensors_of_expr parsed.Stardust_ir.Ast.rhs in
               (match rhs_tensors with
               | [ a; b ] when List.mem_assoc a inputs && List.mem_assoc b inputs
                 ->
                   let t =
                     sparse_add ~name:st.K.result ~format:st.K.result_format
                       (List.assoc a inputs) (List.assoc b inputs)
                   in
                   pool := (st.K.result, t) :: !pool
               | _ -> ()));
        (compiled, baseline))
      spec.K.stages
  in
  let seconds =
    List.map
      (fun p ->
        ( p,
          List.fold_left
            (fun acc (c, baseline) ->
              acc +. stage_seconds ~baseline_profile:baseline p c)
            0.0 compiled_stages ))
      all_platforms
  in
  {
    spec;
    instance = inst.dname;
    seconds;
    compiled = List.map fst compiled_stages;
  }

let run_kernel spec = List.map (run_instance spec) (instances spec)

(** Geometric mean. *)
let gmean = function
  | [] -> nan
  | l ->
      exp (List.fold_left (fun a x -> a +. log x) 0.0 l /. float_of_int (List.length l))

(** Per-kernel geomean seconds per platform. *)
let kernel_gmeans (runs : run list) platform =
  gmean (List.map (fun r -> List.assoc platform r.seconds) runs)
