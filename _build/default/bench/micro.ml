(** Bechamel microbenchmarks of the compiler phases (parse, schedule,
    plan/memory-analysis, lower, codegen) plus one end-to-end compile per
    paper kernel — one [Test.make] per measured quantity. *)

open Bechamel
module K = Stardust_core.Kernels
module C = Stardust_core.Compile
module Plan = Stardust_core.Plan
module Lower = Stardust_core.Lower
module Codegen = Stardust_spatial.Codegen
module Parser = Stardust_ir.Parser
module F = Stardust_tensor.Format
module D = Stardust_workloads.Datasets

let small_sddmm_inputs () =
  [
    ("B",
     D.small_random ~name:"B" ~format:(F.csr ()) ~dims:[ 32; 32 ] ~density:0.1 ());
    ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:32 ~cols:16 ());
    ("D", D.dense_matrix ~seed:5 ~name:"D" ~format:(F.rm ()) ~rows:32 ~cols:16 ());
  ]

let phase_tests () =
  let spec = K.sddmm in
  let st = List.hd spec.K.stages in
  let inputs = small_sddmm_inputs () in
  let sched = K.schedule_stage spec st in
  let plan = Plan.build sched ~inputs in
  let compiled = K.compile_stage spec st ~inputs in
  [
    Test.make ~name:"parse-sddmm"
      (Staged.stage (fun () -> Parser.parse_assign st.K.expr));
    Test.make ~name:"schedule-sddmm"
      (Staged.stage (fun () -> K.schedule_stage spec st));
    Test.make ~name:"plan-sddmm"
      (Staged.stage (fun () -> Plan.build sched ~inputs));
    Test.make ~name:"lower-sddmm" (Staged.stage (fun () -> Lower.lower plan));
    Test.make ~name:"codegen-sddmm"
      (Staged.stage (fun () -> Codegen.to_string compiled.C.program));
  ]

let compile_tests () =
  List.filter_map
    (fun (spec : K.spec) ->
      let st = List.hd spec.K.stages in
      (* small stand-in inputs with the right formats *)
      match spec.K.kname with
      | "SDDMM" ->
          let inputs = small_sddmm_inputs () in
          Some
            (Test.make
               ~name:("compile-" ^ String.lowercase_ascii spec.K.kname)
               (Staged.stage (fun () -> K.compile_stage spec st ~inputs)))
      | "SpMV" ->
          let inputs =
            [
              ("A",
               D.small_random ~name:"A" ~format:(F.csr ()) ~dims:[ 32; 32 ]
                 ~density:0.1 ());
              ("x", D.dense_vector ~name:"x" ~dim:32 ());
            ]
          in
          Some
            (Test.make ~name:"compile-spmv"
               (Staged.stage (fun () -> K.compile_stage spec st ~inputs)))
      | _ -> None)
    K.all

let run () =
  let tests =
    Test.make_grouped ~name:"stardust" (phase_tests () @ compile_tests ())
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Fmt.pr "@.Compiler-phase microbenchmarks (Bechamel, monotonic clock):@.";
  Fmt.pr "%-28s %16s %10s@." "benchmark" "time/run" "r^2";
  Fmt.pr "%s@." (String.make 58 '-');
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let t =
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> t
        | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
      let pretty =
        if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
        else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
        else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
        else Printf.sprintf "%.0f ns" t
      in
      Fmt.pr "%-28s %16s %10.3f@." name pretty r2)
    (List.sort compare rows)
