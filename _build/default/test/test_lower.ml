(* Tests for the compiler core: co-iteration rewrite rules (Figure 10),
   memory analysis (section 6), planning, lowering, and code generation. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Ast = Stardust_ir.Ast
module P = Stardust_ir.Parser
module Cin = Stardust_ir.Cin
module S = Stardust_schedule.Schedule
module Coiter = Stardust_core.Coiter
module Memory = Stardust_core.Memory
module Plan = Stardust_core.Plan
module C = Stardust_core.Compile
module K = Stardust_core.Kernels
module Codegen = Stardust_spatial.Codegen
module Ir = Stardust_spatial.Spatial_ir
module D = Stardust_workloads.Datasets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Co-iteration trees and rewrite rules (Figure 10)                    *)
(* ------------------------------------------------------------------ *)

let formats_2sparse =
  [ ("A", F.csr ()); ("B", F.csr ()); ("C", F.csr ()); ("x", F.dv ()) ]

let tree_of expr v =
  Coiter.tree_of_expr formats_2sparse v (P.parse_expr_string expr)

let test_tree_mul_is_and () =
  match tree_of "B(i,j) * C(i,j)" "j" with
  | Coiter.Node (`And, Coiter.Leaf a, Coiter.Leaf b) ->
      checkb "kinds" true (a.Coiter.kind = `C && b.Coiter.kind = `C)
  | t -> Alcotest.failf "wrong tree %a" Coiter.pp_tree t

let test_tree_add_is_or () =
  match tree_of "B(i,j) + C(i,j)" "j" with
  | Coiter.Node (`Or, _, _) -> ()
  | t -> Alcotest.failf "wrong tree %a" Coiter.pp_tree t

let test_tree_skips_irrelevant () =
  (* x(j) has no level over i *)
  match tree_of "B(i,j) * x(j)" "i" with
  | Coiter.Leaf it -> checkb "only B" true (it.Coiter.tensor = "B")
  | t -> Alcotest.failf "wrong tree %a" Coiter.pp_tree t

let test_rewrite_single () =
  (match Coiter.rewrite (tree_of "B(i,j) * x(j)" "j") with
  | Coiter.Pos_plan { lead; dense } ->
      checkb "lead is B" true (lead.Coiter.tensor = "B");
      checki "x accessed densely" 1 (List.length dense)
  | p -> Alcotest.failf "wrong plan %a" Coiter.pp_plan p);
  match Coiter.rewrite (tree_of "B(i,j) * x(j)" "i") with
  | Coiter.Pos_plan _ -> Alcotest.fail "dense i should not be a pos plan"
  | Coiter.Dense_plan _ -> ()
  | p -> Alcotest.failf "wrong plan %a" Coiter.pp_plan p

let test_rewrite_scan () =
  (match Coiter.rewrite (tree_of "B(i,j) * C(i,j)" "j") with
  | Coiter.Scan_plan { op = `And; _ } -> ()
  | p -> Alcotest.failf "wrong plan %a" Coiter.pp_plan p);
  match Coiter.rewrite (tree_of "B(i,j) + C(i,j)" "j") with
  | Coiter.Scan_plan { op = `Or; _ } -> ()
  | p -> Alcotest.failf "wrong plan %a" Coiter.pp_plan p

let test_rewrite_universe_rules () =
  (* U ∩ U = U *)
  (match Coiter.rewrite (tree_of "B(i,j) * C(i,j)" "i") with
  | Coiter.Dense_plan { dense } -> checki "both dense" 2 (List.length dense)
  | p -> Alcotest.failf "wrong plan %a" Coiter.pp_plan p);
  (* U ∪ C = U: dense side dominates a union *)
  let fmts = [ ("B", F.csr ()); ("z", F.dv ()) ] in
  let t = Coiter.tree_of_expr fmts "j" (P.parse_expr_string "B(i,j) + z(j)") in
  match Coiter.rewrite t with
  | Coiter.Dense_plan _ -> ()
  | p -> Alcotest.failf "U∪C should be dense: %a" Coiter.pp_plan p

let test_rewrite_unsupported () =
  (* three-way compressed union exceeds the scanner arity *)
  let fmts = [ ("B", F.csr ()); ("C", F.csr ()); ("D", F.csr ()) ] in
  let t =
    Coiter.tree_of_expr fmts "j" (P.parse_expr_string "B(i,j) + C(i,j) + D(i,j)")
  in
  (match Coiter.rewrite t with
  | exception Coiter.Lower_error _ -> ()
  | p -> Alcotest.failf "3-way union accepted: %a" Coiter.pp_plan p);
  (* mixed (C + C) * C nesting is rejected *)
  let t =
    Coiter.tree_of_expr fmts "j"
      (P.parse_expr_string "(B(i,j) + C(i,j)) * D(i,j)")
  in
  match Coiter.rewrite t with
  | exception Coiter.Lower_error _ -> ()
  | p -> Alcotest.failf "mixed contraction accepted: %a" Coiter.pp_plan p

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let spmv_plan () =
  let spec = K.spmv in
  let st = List.hd spec.K.stages in
  let inputs =
    [ ("A", D.small_random ~name:"A" ~format:(F.csr ()) ~dims:[ 8; 9 ] ~density:0.3 ());
      ("x", D.dense_vector ~name:"x" ~dim:9 ()) ]
  in
  (Plan.build (K.schedule_stage spec st) ~inputs, inputs)

let test_plan_loops () =
  let plan, _ = spmv_plan () in
  let i = Plan.loop_info plan "i" in
  checki "i extent" 8 i.Plan.extent;
  checki "i depth" 0 i.Plan.depth;
  checkb "i dense" true
    (match i.Plan.plan with Coiter.Dense_plan _ -> true | _ -> false);
  let j = Plan.loop_info plan "j" in
  checkb "j sparse" true
    (match j.Plan.plan with Coiter.Pos_plan _ -> true | _ -> false);
  checkb "j reduce-mapped" true (j.Plan.reduce_target = Some "ws");
  checkb "j innermost" true j.Plan.is_innermost

let test_plan_extent_conflict () =
  let formats = [ ("y", F.dv ()); ("A", F.rm ()); ("x", F.dv ()) ] in
  let sched = S.of_assign ~formats (P.parse_assign "y(i) = A(i,j) * x(j)") in
  let inputs =
    [ ("A", D.dense_matrix ~name:"A" ~format:(F.rm ()) ~rows:4 ~cols:5 ());
      ("x", D.dense_vector ~name:"x" ~dim:9 ()) ]
  in
  match Plan.build sched ~inputs with
  | exception Plan.Plan_error _ -> ()
  | _ -> Alcotest.fail "conflicting extents accepted"

let test_plan_format_mismatch () =
  let spec = K.spmv in
  let st = List.hd spec.K.stages in
  let inputs =
    [ ("A", D.dense_matrix ~name:"A" ~format:(F.rm ()) ~rows:4 ~cols:4 ());
      ("x", D.dense_vector ~name:"x" ~dim:4 ()) ]
  in
  match Plan.build (K.schedule_stage spec st) ~inputs with
  | exception Plan.Plan_error _ -> ()
  | _ -> Alcotest.fail "format mismatch accepted"

let test_plan_result_bounds () =
  (* SDDMM result mirrors B's structure *)
  let spec = K.sddmm in
  let st = List.hd spec.K.stages in
  let b = D.small_random ~name:"B" ~format:(F.csr ()) ~dims:[ 5; 6 ] ~density:0.4 () in
  let inputs =
    [ ("B", b);
      ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:5 ~cols:3 ());
      ("D", D.dense_matrix ~name:"D" ~format:(F.rm ()) ~rows:6 ~cols:3 ()) ]
  in
  let plan = Plan.build (K.schedule_stage spec st) ~inputs in
  let a = Plan.meta plan "A" and bm = Plan.meta plan "B" in
  checki "mirrored nnz bound" bm.Plan.level_counts.(1) a.Plan.level_counts.(1)

(* ------------------------------------------------------------------ *)
(* Memory analysis (section 6.1 rules)                                 *)
(* ------------------------------------------------------------------ *)

let binding_of plan tensor arr = Plan.binding plan tensor arr

let test_memory_spmv_bindings () =
  let plan, _ = spmv_plan () in
  (* position arrays -> dense SRAM at kernel start, whole burst *)
  let b = binding_of plan "A" (Memory.Pos 1) in
  checkb "pos kind" true (b.Memory.kind = Ir.Sram_dense);
  checkb "pos site" true (b.Memory.site = Memory.Kernel_start);
  checkb "pos whole" true (b.Memory.transfer = Memory.Whole_array);
  (* coordinates stream through FIFOs per fiber *)
  let b = binding_of plan "A" (Memory.Crd 1) in
  checkb "crd fifo" true (match b.Memory.kind with Ir.Fifo _ -> true | _ -> false);
  checkb "crd per fiber" true (b.Memory.transfer = Memory.Per_fiber);
  (* A's values stream in order -> FIFO *)
  let b = binding_of plan "A" Memory.Vals in
  checkb "vals fifo" true (match b.Memory.kind with Ir.Fifo _ -> true | _ -> false);
  (* x is gathered at sparse coordinates -> sparse SRAM + shuffle *)
  let b = binding_of plan "x" Memory.Vals in
  checkb "gather kind" true (b.Memory.kind = Ir.Sram_sparse);
  checkb "gather shuffle" true b.Memory.uses_shuffle;
  (* y is a whole dense result *)
  let b = binding_of plan "y" Memory.Vals in
  checkb "result dense sram" true (b.Memory.kind = Ir.Sram_dense);
  (* the scalar workspace is a register *)
  let b = binding_of plan "ws" Memory.Vals in
  checkb "ws register" true (b.Memory.kind = Ir.Reg)

let test_memory_gather_budget () =
  (* a gather table beyond the SRAM budget falls back to sparse DRAM *)
  let spec = K.spmv in
  let st = List.hd spec.K.stages in
  let inputs =
    [ ("A", D.small_random ~name:"A" ~format:(F.csr ()) ~dims:[ 8; 9 ] ~density:0.3 ());
      ("x", D.dense_vector ~name:"x" ~dim:9 ()) ]
  in
  let plan = Plan.build ~sram_budget:4 (K.schedule_stage spec st) ~inputs in
  let b = binding_of plan "x" Memory.Vals in
  checkb "falls to sparse DRAM" true (b.Memory.kind = Ir.Dram_sparse);
  checkb "still shuffles" true b.Memory.uses_shuffle

let test_memory_dense_slices () =
  (* SDDMM C/D dense rows: dense SRAM slices per fiber, no shuffle *)
  let spec = K.sddmm in
  let st = List.hd spec.K.stages in
  let inputs =
    [ ("B", D.small_random ~name:"B" ~format:(F.csr ()) ~dims:[ 5; 6 ] ~density:0.4 ());
      ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:5 ~cols:3 ());
      ("D", D.dense_matrix ~name:"D" ~format:(F.rm ()) ~rows:6 ~cols:3 ()) ]
  in
  let plan = Plan.build (K.schedule_stage spec st) ~inputs in
  List.iter
    (fun t ->
      let b = binding_of plan t Memory.Vals in
      checkb (t ^ " dense sram") true (b.Memory.kind = Ir.Sram_dense);
      checkb (t ^ " per fiber") true (b.Memory.transfer = Memory.Per_fiber);
      checkb (t ^ " no shuffle") false b.Memory.uses_shuffle)
    [ "C"; "D" ];
  (* sparse output values stream out of a FIFO *)
  let b = binding_of plan "A" Memory.Vals in
  checkb "A vals fifo" true (match b.Memory.kind with Ir.Fifo _ -> true | _ -> false)

let test_memory_scan_vals () =
  (* co-iterated values are staged in sparse SRAM (lanes revisit) *)
  let spec = K.plus2 in
  let st = List.hd spec.K.stages in
  let b = D.small_random ~name:"B" ~format:(F.ucc ()) ~dims:[ 3; 4; 5 ] ~density:0.4 () in
  let inputs = [ ("B", b); ("C", D.rotate_even_last ~name:"C" b) ] in
  let plan = Plan.build (K.schedule_stage spec st) ~inputs in
  let bb = binding_of plan "B" Memory.Vals in
  checkb "scan vals sparse sram" true (bb.Memory.kind = Ir.Sram_sparse)

let test_memory_names () =
  Alcotest.(check string) "pos dram" "B2_pos_dram" (Memory.dram_name "B" (Memory.Pos 1));
  Alcotest.(check string) "crd onchip" "B3_crd" (Memory.onchip_name "B" (Memory.Crd 2));
  Alcotest.(check string) "vals" "B_vals" (Memory.onchip_name "B" Memory.Vals)

(* ------------------------------------------------------------------ *)
(* Lowering and code generation                                        *)
(* ------------------------------------------------------------------ *)

let compile_kernel spec inputs =
  K.compile_stage spec (List.hd spec.K.stages) ~inputs

let test_lower_spmv_structure () =
  let _, inputs = spmv_plan () in
  let c = compile_kernel K.spmv inputs in
  checkb "program valid" true (Ir.is_valid c.C.program);
  let code = C.spatial_code c in
  checkb "has Accel" true (contains code "Accel {");
  checkb "loads pos array" true (contains code "A2_pos load A2_pos_dram");
  checkb "reduce pattern" true (contains code "Reduce(ws_vals)");
  checkb "deq crd" true (contains code "A2_crd.deq");
  checkb "gathers x" true (contains code "x_vals(j)");
  checkb "stores result" true (contains code "y_vals_dram")

let test_lower_scan_structure () =
  let spec = K.plus2 in
  let b = D.small_random ~name:"B" ~format:(F.ucc ()) ~dims:[ 3; 4; 5 ] ~density:0.4 () in
  let inputs = [ ("B", b); ("C", D.rotate_even_last ~name:"C" b) ] in
  let c = compile_kernel spec inputs in
  let code = C.spatial_code c in
  checkb "valid" true (Ir.is_valid c.C.program);
  checkb "builds bit vectors" true (contains code "GenBitVector");
  checkb "or-scan" true (contains code ", or)");
  checkb "scan binds out ordinal" true (contains code "_out")

let test_lower_rejects_unscheduled_accum_output () =
  (* accumulating into a streamed sparse output needs a workspace *)
  let formats = [ ("A", F.csr ()); ("B", F.csr ()); ("x", F.dv ()); ("y", F.sv ()) ] in
  ignore formats;
  let fmts = [ ("y", F.sv ()); ("B", F.csr ()); ("x", F.dv ()) ] in
  let sched = S.of_assign ~formats:fmts (P.parse_assign "y(i) = B(i,j) * x(j)") in
  let inputs =
    [ ("B", D.small_random ~name:"B" ~format:(F.csr ()) ~dims:[ 4; 5 ] ~density:0.5 ());
      ("x", D.dense_vector ~name:"x" ~dim:5 ()) ]
  in
  match C.compile sched ~inputs with
  | exception C.Compile_error _ -> ()
  | _ -> Alcotest.fail "unscheduled accumulation accepted"

let test_codegen_loc () =
  let _, inputs = spmv_plan () in
  let c = compile_kernel K.spmv inputs in
  let loc = C.spatial_loc c in
  checkb "plausible LoC" true (loc > 20 && loc < 120);
  checki "input loc" 10 (C.input_loc c)

let test_validator_catches_errors () =
  let bad =
    { Ir.name = "bad"; env = []; host_params = []; dram = [];
      accel = [ Ir.Load_burst { dst = "nope"; src = "missing"; lo = Ir.Int 0;
                               hi = Ir.Int 4; par = 1 } ] }
  in
  checkb "invalid" false (Ir.is_valid bad);
  let redeclared =
    { Ir.name = "bad2"; env = []; host_params = [];
      dram = [ { Ir.mem = "a_dram"; kind = Ir.Dram_dense; size = Ir.Int 4 } ];
      accel =
        [ Ir.Alloc { mem = "m"; kind = Ir.Sram_dense; size = Ir.Int 4 };
          Ir.Alloc { mem = "m"; kind = Ir.Sram_dense; size = Ir.Int 4 } ] }
  in
  checkb "redeclaration" false (Ir.is_valid redeclared)

let test_all_kernels_compile_and_validate () =
  (* every paper kernel produces a structurally valid Spatial program *)
  let small = Test_backend_data.small_inputs in
  List.iter
    (fun (spec : K.spec) ->
      let pool = ref (List.assoc spec.K.kname small) in
      List.iter
        (fun (st : K.stage) ->
          let inputs =
            List.filter_map
              (fun (n, _) ->
                if n = st.K.result then None
                else Option.map (fun t -> (n, t)) (List.assoc_opt n !pool))
              st.K.formats
          in
          let c = K.compile_stage spec st ~inputs in
          checkb (spec.K.kname ^ " valid") true (Ir.is_valid c.C.program);
          (* feed a correct intermediate forward *)
          let assign = P.parse_assign st.K.expr in
          let expected =
            Stardust_vonneumann.Reference.eval assign ~inputs
              ~result_format:st.K.result_format
          in
          pool := (st.K.result, expected) :: !pool)
        spec.K.stages)
    K.all

let suite =
  [
    ("tree: mul is intersection", `Quick, test_tree_mul_is_and);
    ("tree: add is union", `Quick, test_tree_add_is_or);
    ("tree: irrelevant accesses", `Quick, test_tree_skips_irrelevant);
    ("rewrite: single iterators", `Quick, test_rewrite_single);
    ("rewrite: scans", `Quick, test_rewrite_scan);
    ("rewrite: universe rules", `Quick, test_rewrite_universe_rules);
    ("rewrite: unsupported shapes", `Quick, test_rewrite_unsupported);
    ("plan: loop table", `Quick, test_plan_loops);
    ("plan: extent conflicts", `Quick, test_plan_extent_conflict);
    ("plan: format mismatch", `Quick, test_plan_format_mismatch);
    ("plan: result bounds mirror", `Quick, test_plan_result_bounds);
    ("memory: SpMV bindings", `Quick, test_memory_spmv_bindings);
    ("memory: gather budget", `Quick, test_memory_gather_budget);
    ("memory: dense slices", `Quick, test_memory_dense_slices);
    ("memory: scan values", `Quick, test_memory_scan_vals);
    ("memory: array names", `Quick, test_memory_names);
    ("lower: SpMV structure", `Quick, test_lower_spmv_structure);
    ("lower: scan structure", `Quick, test_lower_scan_structure);
    ("lower: rejects raw sparse accumulation", `Quick,
     test_lower_rejects_unscheduled_accum_output);
    ("codegen: lines of code", `Quick, test_codegen_loc);
    ("validator: catches errors", `Quick, test_validator_catches_errors);
    ("all kernels compile+validate", `Quick, test_all_kernels_compile_and_validate);
  ]
