test/test_tensor.ml: Alcotest Array Float Gen Hashtbl List Option Printf QCheck QCheck_alcotest Stardust_tensor String
