test/test_ir.ml: Alcotest List Option Stardust_ir String
