test/test_workloads.ml: Alcotest Array Stardust_tensor Stardust_workloads
