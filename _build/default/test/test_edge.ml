(* Edge-case and failure-injection tests across the stack: empty and
   degenerate tensors, scheduling misuse, simulator guard rails, and
   numeric corner cases. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Coo = Stardust_tensor.Coo
module Stats = Stardust_tensor.Stats
module P = Stardust_ir.Parser
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module S = Stardust_schedule.Schedule
module C = Stardust_core.Compile
module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module Ref = Stardust_vonneumann.Reference
module Imp = Stardust_vonneumann.Imp_interp
module D = Stardust_workloads.Datasets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Degenerate tensors                                                  *)
(* ------------------------------------------------------------------ *)

let test_empty_tensor () =
  let t = T.of_entries ~name:"z" ~format:(F.csr ()) ~dims:[ 4; 5 ] [] in
  checki "nnz" 0 (T.nnz t);
  checki "vals" 0 (T.num_vals t);
  checkf "get" 0.0 (T.get t [| 2; 3 |]);
  checkf "density" 0.0 (T.density t);
  let count = ref 0 in
  T.iter_nonzeros (fun _ _ -> incr count) t;
  checki "no iterations" 0 !count;
  (* empty tensors still convert and round-trip *)
  checkb "convert empty" true (T.equal_approx t (T.convert ~format:(F.csc ()) t))

let test_empty_rows_pack () =
  (* rows 0 and 2 empty: pos must still be monotone and complete *)
  let t = T.of_entries ~name:"t" ~format:(F.csr ()) ~dims:[ 3; 3 ]
      [ ([ 1; 0 ], 1.0); ([ 1; 2 ], 2.0) ] in
  Alcotest.(check (array int)) "pos" [| 0; 0; 2; 2 |] (T.pos_array t 1)

let test_single_element () =
  let t = T.of_entries ~name:"t" ~format:(F.csf 3) ~dims:[ 1; 1; 1 ]
      [ ([ 0; 0; 0 ], 7.0) ] in
  checkf "get" 7.0 (T.get t [| 0; 0; 0 |]);
  checki "positions at each level" 1 (T.num_positions t 2)

let test_dense_trailing_zeros () =
  (* csr-like with dense last level stores explicit zeros *)
  let fmt = F.make [ F.Compressed; F.Dense ] in
  let t = T.of_entries ~name:"t" ~format:fmt ~dims:[ 3; 4 ]
      [ ([ 1; 2 ], 5.0) ] in
  checki "one row stored" 4 (T.num_vals t);
  checki "one structural nonzero" 1 (T.nnz t);
  checkf "explicit zero readable" 0.0 (T.get t [| 1; 0 |])

let test_negative_values_survive () =
  let t = T.of_entries ~name:"t" ~format:(F.csr ()) ~dims:[ 2; 2 ]
      [ ([ 0; 0 ], -3.5) ] in
  checkf "negative value" (-3.5) (T.get t [| 0; 0 |])

(* ------------------------------------------------------------------ *)
(* Empty inputs through the whole pipeline                             *)
(* ------------------------------------------------------------------ *)

let test_spmv_empty_matrix () =
  let a = T.of_entries ~name:"A" ~format:(F.csr ()) ~dims:[ 4; 4 ] [] in
  let x = D.dense_vector ~name:"x" ~dim:4 () in
  let inputs = [ ("A", a); ("x", x) ] in
  let st = List.hd K.spmv.K.stages in
  let compiled = K.compile_stage K.spmv st ~inputs in
  let results, _ = Sim.execute compiled in
  checki "empty result" 0 (T.nnz (List.assoc "y" results));
  let cpu, _, _ = Imp.run compiled.C.plan ~inputs in
  checki "cpu empty too" 0 (T.nnz (List.assoc "y" cpu))

let test_union_disjoint_operands () =
  (* B and C share no coordinates: the union is their concatenation *)
  let b = T.of_entries ~name:"B" ~format:(F.csr ()) ~dims:[ 2; 6 ]
      [ ([ 0; 0 ], 1.0); ([ 1; 2 ], 2.0) ] in
  let c = T.of_entries ~name:"C" ~format:(F.csr ()) ~dims:[ 2; 6 ]
      [ ([ 0; 1 ], 3.0); ([ 1; 5 ], 4.0) ] in
  let inputs = [ ("B", b); ("C", c) ] in
  let spec = Stardust_core.Kernels_extra.sp_add in
  let st = List.hd spec.K.stages in
  let compiled = K.compile_stage spec st ~inputs in
  let results, _ = Sim.execute compiled in
  let r = List.assoc "A" results in
  checki "all four entries" 4 (T.nnz r);
  checkf "from B" 2.0 (T.get r [| 1; 2 |]);
  checkf "from C" 4.0 (T.get r [| 1; 5 |])

let test_intersection_disjoint_is_empty () =
  let b = T.of_entries ~name:"B" ~format:(F.csr ()) ~dims:[ 2; 6 ]
      [ ([ 0; 0 ], 1.0) ] in
  let c = T.of_entries ~name:"C" ~format:(F.csr ()) ~dims:[ 2; 6 ]
      [ ([ 0; 1 ], 3.0) ] in
  let inputs = [ ("B", b); ("C", c) ] in
  let spec = Stardust_core.Kernels_extra.hadamard in
  let st = List.hd spec.K.stages in
  let compiled = K.compile_stage spec st ~inputs in
  let results, _ = Sim.execute compiled in
  checki "empty intersection" 0 (T.nnz (List.assoc "A" results))

(* ------------------------------------------------------------------ *)
(* Parser numerics                                                     *)
(* ------------------------------------------------------------------ *)

let test_parser_numbers () =
  let lit s =
    match (P.parse_assign ("a = " ^ s)).Ast.rhs with
    | Ast.Const f -> f
    | e -> Alcotest.failf "not a constant: %a" Ast.pp_expr e
  in
  checkf "int" 3.0 (lit "3");
  checkf "decimal" 0.5 (lit "0.5");
  checkf "leading dot" 0.25 (lit ".25");
  checkf "scientific" 1500.0 (lit "1.5e3");
  checkf "negative exponent" 0.0015 (lit "1.5e-3")

let test_parser_whitespace_and_names () =
  let a = P.parse_assign "  y_out ( i1 )=  A_mat(i1 ,j')   * x(j')  " in
  Alcotest.(check string) "tensor" "y_out" a.Ast.lhs.Ast.tensor;
  Alcotest.(check (list string)) "primed vars" [ "i1"; "j'" ]
    (Ast.indices_of_expr a.Ast.rhs)

(* ------------------------------------------------------------------ *)
(* Scheduling misuse                                                   *)
(* ------------------------------------------------------------------ *)

let spmv_sched () =
  S.of_assign
    ~formats:[ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]
    (P.parse_assign "y(i) = A(i,j) * x(j)")

let expect_schedule_error name f =
  match f () with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail (name ^ ": misuse accepted")

let test_schedule_misuse () =
  expect_schedule_error "zero split factor" (fun () ->
      S.split_up (spmv_sched ()) "i" "a" "b" 0);
  expect_schedule_error "negative split factor" (fun () ->
      S.split_down (spmv_sched ()) "i" "a" "b" (-2));
  expect_schedule_error "fuse non-nested" (fun () ->
      S.fuse (spmv_sched ()) "j" "i" "f");
  expect_schedule_error "precompute arity" (fun () ->
      S.precompute (spmv_sched ())
        (Ast.access "x" [ "j" ])
        [ "j" ] []
        ("t", F.make ~region:F.On_chip [ F.Dense ]));
  expect_schedule_error "precompute bad placement" (fun () ->
      S.precompute ~at:"zz" (spmv_sched ())
        (Ast.access "x" [ "j" ])
        [ "j" ] [ "j" ]
        ("t", F.make ~region:F.On_chip [ F.Dense ]))

let test_auto_bulk_noop () =
  (* nothing matches: the pass leaves the program (and trace) unchanged *)
  let s = spmv_sched () in
  let s' = S.auto_bulk_transfers s in
  checkb "stmt unchanged" true (Cin.equal_stmt (S.stmt s) (S.stmt s'));
  checki "trace unchanged" (List.length (S.trace s)) (List.length (S.trace s'))

(* ------------------------------------------------------------------ *)
(* Simulator guard rails                                               *)
(* ------------------------------------------------------------------ *)

let test_sim_oob_detected () =
  let open Stardust_spatial.Spatial_ir in
  let prog =
    { name = "oob"; env = []; host_params = [];
      dram = [ { mem = "d"; kind = Dram_dense; size = Int 2 } ];
      accel =
        [ Alloc { mem = "m"; kind = Sram_dense; size = Int 2 };
          Load_burst { dst = "m"; src = "d"; lo = Int 0; hi = Int 4; par = 1 } ] }
  in
  match Sim.execute_program prog ~dram_init:[] with
  | exception Sim.Sim_error _ -> ()
  | _ -> Alcotest.fail "out-of-bounds burst accepted"

let test_sim_capacity_overflow_detected () =
  let open Stardust_spatial.Spatial_ir in
  let prog =
    { name = "cap"; env = []; host_params = [];
      dram = [ { mem = "d"; kind = Dram_dense; size = Int 8 } ];
      accel =
        [ Alloc { mem = "m"; kind = Sram_dense; size = Int 2 };
          Load_burst { dst = "m"; src = "d"; lo = Int 0; hi = Int 8; par = 1 } ] }
  in
  match Sim.execute_program prog ~dram_init:[] with
  | exception Sim.Sim_error _ -> ()
  | _ -> Alcotest.fail "SRAM capacity overflow accepted"

(* ------------------------------------------------------------------ *)
(* Cross-format compilation matrix                                     *)
(* ------------------------------------------------------------------ *)

let test_spmv_over_matrix_formats () =
  (* the same expression compiles and validates over several B formats *)
  let x = D.dense_vector ~name:"x" ~dim:6 () in
  let entries = [ ([ 0; 1 ], 2.0); ([ 2; 0 ], 3.0); ([ 4; 5 ], 4.0) ] in
  List.iter
    (fun fmt ->
      let a = T.of_entries ~name:"A" ~format:fmt ~dims:[ 5; 6 ] entries in
      let formats = [ ("y", F.dv ()); ("A", fmt); ("x", F.dv ()) ] in
      let sched =
        S.of_assign ~formats (P.parse_assign "y(i) = A(i,j) * x(j)")
      in
      let compiled = C.compile sched ~inputs:[ ("A", a); ("x", x) ] in
      let expected =
        Ref.eval (P.parse_assign "y(i) = A(i,j) * x(j)")
          ~inputs:[ ("A", a); ("x", x) ] ~result_format:(F.dv ())
      in
      let results, _ = Sim.execute compiled in
      checkb (F.short_name fmt ^ " agrees") true
        (T.max_abs_diff (List.assoc "y" results) expected < 1e-6))
    [ F.csr (); F.rm (); F.make [ F.Compressed; F.Compressed ];
      F.make [ F.Compressed; F.Dense ] ]

let suite =
  [
    ("empty tensor", `Quick, test_empty_tensor);
    ("empty rows pack", `Quick, test_empty_rows_pack);
    ("single element csf", `Quick, test_single_element);
    ("dense trailing zeros", `Quick, test_dense_trailing_zeros);
    ("negative values", `Quick, test_negative_values_survive);
    ("pipeline: empty matrix", `Quick, test_spmv_empty_matrix);
    ("pipeline: disjoint union", `Quick, test_union_disjoint_operands);
    ("pipeline: disjoint intersection", `Quick, test_intersection_disjoint_is_empty);
    ("parser: numeric literals", `Quick, test_parser_numbers);
    ("parser: whitespace and names", `Quick, test_parser_whitespace_and_names);
    ("schedule misuse", `Quick, test_schedule_misuse);
    ("auto bulk no-op", `Quick, test_auto_bulk_noop);
    ("sim: OOB burst", `Quick, test_sim_oob_detected);
    ("sim: capacity overflow", `Quick, test_sim_capacity_overflow_detected);
    ("SpMV across matrix formats", `Quick, test_spmv_over_matrix_formats);
  ]
