(* Tests for the Capstan architecture substrate: DRAM models, architecture
   parameters, and the resource accounting of Table 5. *)

module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram
module Resources = Stardust_capstan.Resources
module Sim = Stardust_capstan.Sim
module K = Stardust_core.Kernels
module F = Stardust_tensor.Format
module D = Stardust_workloads.Datasets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-6)

(* ------------------------------------------------------------------ *)
(* Arch                                                                *)
(* ------------------------------------------------------------------ *)

let test_arch_defaults () =
  let a = Arch.default in
  checki "pcu" 200 a.Arch.num_pcu;
  checki "pmu" 200 a.Arch.num_pmu;
  checki "mc" 80 a.Arch.num_mc;
  checki "shuffle" 16 a.Arch.num_shuffle;
  checki "lanes" 16 a.Arch.lanes;
  checki "pmu words" (16 * 4096) (Arch.pmu_words a);
  checki "pmus for small" 1 (Arch.pmus_for a 10);
  checki "pmus for exact" 1 (Arch.pmus_for a (16 * 4096));
  checki "pmus for big" 2 (Arch.pmus_for a ((16 * 4096) + 1))

let test_arch_variants () =
  checkf "ideal net overhead" 1.0 (Arch.ideal_network Arch.default).Arch.net_overhead;
  checki "plasticine scalar sparse" 1 Arch.plasticine.Arch.sparse_lanes;
  checki "capstan vector sparse" 16 Arch.default.Arch.sparse_lanes

(* ------------------------------------------------------------------ *)
(* DRAM                                                                *)
(* ------------------------------------------------------------------ *)

let test_dram_bandwidths () =
  checkb "hbm faster than ddr4" true
    (Dram.hbm2e.Dram.bandwidth_bytes_per_s > Dram.ddr4.Dram.bandwidth_bytes_per_s);
  checkb "ideal infinite" true
    (Float.is_integer Dram.ideal.Dram.bandwidth_bytes_per_s = false
     || Dram.ideal.Dram.bandwidth_bytes_per_s = infinity)

let test_dram_transfer_cycles () =
  let clock_hz = 1.6e9 in
  let c_ddr =
    Dram.transfer_cycles Dram.ddr4 ~clock_hz ~streamed_bytes:1.0e6
      ~random_accesses:0.0
  in
  let c_hbm =
    Dram.transfer_cycles Dram.hbm2e ~clock_hz ~streamed_bytes:1.0e6
      ~random_accesses:0.0
  in
  checkb "ddr slower" true (c_ddr > c_hbm);
  checkf "ideal free" 0.0
    (Dram.transfer_cycles Dram.ideal ~clock_hz ~streamed_bytes:1.0e9
       ~random_accesses:1.0e6);
  (* random accesses cost a de-rated full line each *)
  let c_rand =
    Dram.transfer_cycles Dram.ddr4 ~clock_hz ~streamed_bytes:0.0
      ~random_accesses:1000.0
  in
  checkb "randoms expensive" true (c_rand > 1000.0 *. 4.0 /. 42.0)

let test_dram_bandwidth_sweep () =
  let base = Dram.hbm2e in
  let half = Dram.with_bandwidth base (base.Dram.bandwidth_bytes_per_s /. 2.0) in
  let clock_hz = 1.6e9 in
  let c1 = Dram.transfer_cycles base ~clock_hz ~streamed_bytes:1e6 ~random_accesses:0. in
  let c2 = Dram.transfer_cycles half ~clock_hz ~streamed_bytes:1e6 ~random_accesses:0. in
  checkf "halving bandwidth doubles time" (2.0 *. c1) c2

(* ------------------------------------------------------------------ *)
(* Resources (Table 5 shape)                                           *)
(* ------------------------------------------------------------------ *)

let compile name =
  let spec = Option.get (K.find name) in
  let st = List.hd spec.K.stages in
  let inputs =
    List.filter
      (fun (n, _) -> List.mem_assoc n st.K.formats)
      (List.assoc spec.K.kname Test_backend_data.small_inputs)
  in
  K.compile_stage spec st ~inputs

let test_resources_shuffle_pattern () =
  (* The paper's Table 5 shuffle column: gather kernels saturate the 16
     shuffle networks, affine kernels use none, union-result kernels use
     one port per outer replica. *)
  let shuf name = (Resources.count Arch.default (compile name)).Resources.shuffle in
  checki "SpMV gathers" 16 (shuf "SpMV");
  checki "MatTransMul gathers" 16 (shuf "MatTransMul");
  checki "Residual gathers" 16 (shuf "Residual");
  checki "TTV gathers" 16 (shuf "TTV");
  checki "SDDMM affine" 0 (shuf "SDDMM");
  checki "TTM affine" 0 (shuf "TTM");
  checki "MTTKRP affine" 0 (shuf "MTTKRP");
  checki "InnerProd scalar result" 0 (shuf "InnerProd");
  checki "Plus2 scatter per level" 2 (shuf "Plus2")

let test_resources_within_budget () =
  List.iter
    (fun (spec : K.spec) ->
      let u = Resources.count Arch.default (compile spec.K.kname) in
      checkb (spec.K.kname ^ " pcu") true (u.Resources.pcu <= 200);
      checkb (spec.K.kname ^ " pmu") true (u.Resources.pmu <= 200);
      checkb (spec.K.kname ^ " mc") true (u.Resources.mc <= 80);
      checkb (spec.K.kname ^ " shuffle") true (u.Resources.shuffle <= 16);
      checkb (spec.K.kname ^ " nonzero") true (u.Resources.pcu > 0))
    K.all

let test_resources_scale_with_par () =
  let spec = { K.spmv with K.outer_par = 2 } in
  let st = List.hd spec.K.stages in
  let inputs = List.assoc "SpMV" Test_backend_data.small_inputs in
  let low = Resources.count Arch.default (K.compile_stage spec st ~inputs) in
  let spec16 = { K.spmv with K.outer_par = 16 } in
  let high = Resources.count Arch.default (K.compile_stage spec16 st ~inputs) in
  checkb "more par, more pcu" true (high.Resources.pcu > low.Resources.pcu);
  checkb "more par, more shuffle" true (high.Resources.shuffle > low.Resources.shuffle)

let test_limiting_resource () =
  let u = Resources.count Arch.default (compile "SpMV") in
  Alcotest.(check string) "spmv limited by shuffle" "Shuf" u.Resources.limiting

let suite =
  [
    ("arch defaults", `Quick, test_arch_defaults);
    ("arch variants", `Quick, test_arch_variants);
    ("dram bandwidth ordering", `Quick, test_dram_bandwidths);
    ("dram transfer cycles", `Quick, test_dram_transfer_cycles);
    ("dram bandwidth sweep", `Quick, test_dram_bandwidth_sweep);
    ("resources: shuffle pattern (Table 5)", `Quick, test_resources_shuffle_pattern);
    ("resources: within chip budget", `Quick, test_resources_within_budget);
    ("resources: scale with par", `Quick, test_resources_scale_with_par);
    ("resources: limiting resource", `Quick, test_limiting_resource);
  ]
