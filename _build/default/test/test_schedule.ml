(* Tests for the scheduling language: every command of Tables 1 and 2,
   validity checks, and the semantics-preservation property (scheduled CIN
   interpreted == dense reference). *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Ast = Stardust_ir.Ast
module P = Stardust_ir.Parser
module Cin = Stardust_ir.Cin
module S = Stardust_schedule.Schedule
module R = Stardust_schedule.Relation
module Ref = Stardust_vonneumann.Reference
module Interp = Stardust_vonneumann.Cin_interp
module D = Stardust_workloads.Datasets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let strings = Alcotest.list Alcotest.string
let on_scalar = F.make ~region:F.On_chip []

let spmv_formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]
let spmv = P.parse_assign "y(i) = A(i,j) * x(j)"
let spmv_sched () = S.of_assign ~formats:spmv_formats spmv

let small_A () =
  D.small_random ~seed:3 ~name:"A" ~format:(F.csr ()) ~dims:[ 6; 7 ] ~density:0.4 ()

let small_x () = D.dense_vector ~name:"x" ~dim:7 ()

let inputs () = [ ("A", small_A ()); ("x", small_x ()) ]

(** Scheduled program evaluates to the same tensor as the reference. *)
let preserves_semantics ?(inputs = inputs ()) ~assign ~result ~result_format sched =
  let expected = Ref.eval assign ~inputs ~result_format in
  let got = Interp.run sched ~inputs ~result ~result_format in
  T.max_abs_diff got expected < 1e-9

(* ------------------------------------------------------------------ *)
(* of_assign                                                           *)
(* ------------------------------------------------------------------ *)

let test_of_assign () =
  let s = spmv_sched () in
  Alcotest.(check (list string)) "loops" [ "i"; "j" ] (Cin.bound_vars (S.stmt s));
  checkb "valid" true (S.is_valid s);
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_of_assign_missing_format () =
  Alcotest.check_raises "missing format"
    (S.Schedule_error "of_assign: tensor x has no declared format") (fun () ->
      ignore (S.of_assign ~formats:[ ("y", F.dv ()); ("A", F.csr ()) ] spmv))

let test_of_assign_arity () =
  match S.of_assign ~formats:spmv_formats (P.parse_assign "y(i) = A(i) * x(i)") with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

let test_of_assign_mixed_terms () =
  (* Residual-style mixed terms get an automatic workspace. *)
  let formats =
    [ ("y", F.dv ()); ("b", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]
  in
  let a = P.parse_assign "y(i) = b(i) - A(i,j) * x(j)" in
  let s = S.of_assign ~formats a in
  checkb "workspace introduced" true (S.has_tensor s "_rs");
  let has_where =
    Cin.fold (fun acc n -> acc || match n with Cin.Where _ -> true | _ -> false)
      false (S.stmt s)
  in
  checkb "where node" true has_where;
  let inputs =
    [ ("A", small_A ()); ("x", small_x ());
      ("b", D.dense_vector ~seed:5 ~name:"b" ~dim:6 ()) ]
  in
  checkb "semantics" true
    (preserves_semantics ~inputs ~assign:a ~result:"y" ~result_format:(F.dv ()) s)

(* ------------------------------------------------------------------ *)
(* precompute                                                          *)
(* ------------------------------------------------------------------ *)

let test_precompute_scalar_workspace () =
  let s = spmv_sched () in
  let e = Ast.(access "A" [ "i"; "j" ] * access "x" [ "j" ]) in
  let s = S.precompute s e [] [] ("ws", on_scalar) in
  checkb "temp recorded" true (List.mem "ws" s.S.temporaries);
  (* shape: forall i (y = ws where forall j ws += A*x) *)
  (match S.stmt s with
  | Cin.Forall { index = "i"; body = Cin.Where { consumer = Cin.Assign c; producer } }
    ->
      checkb "consumer reads ws" true
        (List.mem "ws" (Ast.tensors_of_expr c.Ast.rhs));
      checkb "consumer not accum" false c.Ast.accum;
      Alcotest.(check (list string)) "producer loop" [ "j" ] (Cin.bound_vars producer)
  | s -> Alcotest.failf "wrong shape: %a" Cin.pp s);
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_precompute_staging () =
  let s = spmv_sched () in
  let s = S.precompute s (Ast.access "x" [ "j" ]) [ "j" ] [ "j" ]
      ("x_on", F.make ~region:F.On_chip [ F.Dense ]) in
  (match S.stmt s with
  | Cin.Where { producer; _ } ->
      Alcotest.(check (list string)) "producer copies x" [ "x" ]
        (Cin.tensors_read producer)
  | s -> Alcotest.failf "expected top-level where, got %a" Cin.pp s);
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_precompute_staging_at () =
  let s = spmv_sched () in
  let s = S.precompute ~at:"i" s (Ast.access "x" [ "j" ]) [ "j" ] [ "j" ]
      ("x_on", F.make ~region:F.On_chip [ F.Dense ]) in
  (* the where sits inside the i loop *)
  (match S.stmt s with
  | Cin.Forall { index = "i"; body = Cin.Where _ } -> ()
  | s -> Alcotest.failf "wrong placement: %a" Cin.pp s);
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_precompute_errors () =
  let s = spmv_sched () in
  (match S.precompute s (Ast.access "zz" [ "j" ]) [] [] ("w", on_scalar) with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "missing expression accepted");
  let s' = S.precompute s Ast.(access "A" [ "i"; "j" ] * access "x" [ "j" ]) [] []
      ("ws", on_scalar) in
  match S.precompute s' (Ast.access "x" [ "j" ]) [] [] ("ws", on_scalar) with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "duplicate temp accepted"

(* ------------------------------------------------------------------ *)
(* Loop transformations                                                *)
(* ------------------------------------------------------------------ *)

let test_split_up () =
  let s = spmv_sched () in
  let s = S.split_up s "i" "i0" "i1" 2 in
  Alcotest.(check (list string)) "loops" [ "i0"; "i1"; "j" ]
    (Cin.bound_vars (S.stmt s));
  checkb "relation recorded" true
    (List.exists (function R.Split_up _ -> true | _ -> false) (S.relations s));
  checkb "still valid (derived var)" true (S.is_valid s);
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_split_down () =
  let s = S.split_down (spmv_sched ()) "i" "i0" "i1" 3 in
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_fuse () =
  let s = S.fuse (spmv_sched ()) "i" "j" "f" in
  Alcotest.(check (list string)) "fused loop" [ "f" ] (Cin.bound_vars (S.stmt s));
  checkb "valid" true (S.is_valid s);
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_split_then_fuse_roundtrip () =
  let s = spmv_sched () in
  let s = S.split_up s "j" "j0" "j1" 4 in
  let s = S.fuse s "j0" "j1" "jf" in
  checkb "semantics" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_reorder () =
  let formats =
    [ ("A", F.rm ()); ("B", F.csf 3); ("C", F.cm ()) ]
  in
  let a = P.parse_assign "A(i,k) = B(i,j,l) * C(k,l)" in
  let s = S.of_assign ~formats:[ ("A", F.rm ()); ("B", F.csf 3); ("C", F.cm ()) ] a in
  ignore formats;
  let s = S.reorder s [ "i"; "k"; "l"; "j" ] in
  Alcotest.(check (list string)) "new order" [ "i"; "k"; "l"; "j" ]
    (Cin.bound_vars (S.stmt s))

let test_reorder_errors () =
  let s = spmv_sched () in
  (match S.reorder s [ "i" ] with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "partial permutation accepted");
  match S.reorder s [ "i"; "zz" ] with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "unknown variable accepted"

let test_split_missing_loop () =
  match S.split_up (spmv_sched ()) "zz" "a" "b" 2 with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "missing loop accepted"

(* ------------------------------------------------------------------ *)
(* map / accelerate / environment                                      *)
(* ------------------------------------------------------------------ *)

let test_environment () =
  let s = spmv_sched () in
  let s = S.set_environment s "innerPar" 16 in
  let s = S.set_environment s "innerPar" 8 in
  checki "overwrite" 8 (S.env_value s "innerPar");
  checki "default" 4 (S.env_value ~default:4 s "outerPar");
  match S.env_value s "nope" with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "unset variable accepted"

let test_map_and_accelerate () =
  let s = spmv_sched () in
  let e = Ast.(access "A" [ "i"; "j" ] * access "x" [ "j" ]) in
  let s = S.precompute s e [] [] ("ws", on_scalar) in
  let target =
    Cin.forall "j"
      (Cin.Assign { lhs = { tensor = "ws"; indices = [] }; accum = true; rhs = e })
  in
  let s = S.accelerate s target Cin.Spatial Cin.Reduction (Some (Cin.Cvar "innerPar")) in
  let mapped =
    Cin.fold
      (fun acc n ->
        acc || match n with Cin.Mapped { func = Cin.Reduction; _ } -> true | _ -> false)
      false (S.stmt s)
  in
  checkb "reduce mapped" true mapped;
  checkb "semantics unchanged" true
    (preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let test_map_missing_target () =
  let s = spmv_sched () in
  let bogus = Cin.forall "q" (Cin.Assign (P.parse_assign "w += A(q,q)")) in
  match S.map_to s bogus Cin.Spatial Cin.Reduction None with
  | exception S.Schedule_error _ -> ()
  | _ -> Alcotest.fail "missing target accepted"

let test_accelerate_staged () =
  (* stage_inputs copies off-chip operands on-chip and rewrites the body *)
  let formats = [ ("a", F.dv ()); ("b", F.dv ()); ("c", F.dv ()) ] in
  let a = P.parse_assign "a(i) = b(i) * c(i)" in
  let s = S.of_assign ~formats a in
  let target = S.stmt s in
  let s = S.accelerate ~stage_inputs:true s target Cin.Spatial
      (Cin.Custom_func "vvmul") None in
  checkb "b staged" true (S.has_tensor s "b_on");
  checkb "c staged" true (S.has_tensor s "c_on");
  checkb "staged copies on-chip" true (F.is_on_chip (S.format_of s "b_on"))

let test_auto_bulk_transfers () =
  let formats =
    [ ("t_on", F.make ~region:F.On_chip [ F.Dense ]); ("t", F.dv ()) ]
  in
  let a = P.parse_assign "t_on(i) = t(i)" in
  let s = S.of_assign ~formats a in
  let s = S.auto_bulk_transfers s in
  let bulk =
    Cin.fold
      (fun acc n ->
        acc || match n with Cin.Mapped { func = Cin.Bulk_load; _ } -> true | _ -> false)
      false (S.stmt s)
  in
  checkb "bulk load detected" true bulk

let test_trace () =
  let s = S.set_environment (spmv_sched ()) "innerPar" 16 in
  checki "trace grows" 2 (List.length (S.trace s))

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)
(* ------------------------------------------------------------------ *)

let test_relation_extents () =
  let rels = [ R.Split_up { parent = "i"; outer = "io"; inner = "ii"; factor = 4 } ] in
  let base = function "i" -> Some 10 | _ -> None in
  Alcotest.(check (option int)) "inner" (Some 4) (R.extent_of rels base "ii");
  Alcotest.(check (option int)) "outer ceil" (Some 3) (R.extent_of rels base "io");
  let rels = [ R.Fused { outer = "i"; inner = "j"; fused = "f" } ] in
  let base = function "i" -> Some 3 | "j" -> Some 5 | _ -> None in
  Alcotest.(check (option int)) "fused" (Some 15) (R.extent_of rels base "f")

let test_relation_recoverable () =
  let rels = [ R.Split_up { parent = "i"; outer = "io"; inner = "ii"; factor = 4 } ] in
  let known = R.recoverable rels [ "io"; "ii" ] in
  checkb "parent recoverable" true (List.mem "i" known);
  let known = R.recoverable rels [ "io" ] in
  checkb "needs both" false (List.mem "i" known)

(* ------------------------------------------------------------------ *)
(* Property: random schedule pipelines preserve semantics               *)
(* ------------------------------------------------------------------ *)

let prop_schedules_preserve =
  QCheck.Test.make ~name:"random split/fuse/reorder pipelines preserve semantics"
    ~count:60
    QCheck.(triple (int_bound 2) (int_range 2 5) (int_bound 1))
    (fun (which, factor, flip) ->
      let s = spmv_sched () in
      let s =
        match which with
        | 0 -> S.split_up s "j" "j0" "j1" factor
        | 1 -> S.split_down s "i" "i0" "i1" factor
        | _ -> S.fuse s "i" "j" "f"
      in
      let s =
        if flip = 1 && which = 0 then S.fuse s "j0" "j1" "jf" else s
      in
      preserves_semantics ~assign:spmv ~result:"y" ~result_format:(F.dv ()) s)

let suite =
  [
    ("of_assign", `Quick, test_of_assign);
    ("of_assign missing format", `Quick, test_of_assign_missing_format);
    ("of_assign arity", `Quick, test_of_assign_arity);
    ("of_assign mixed terms", `Quick, test_of_assign_mixed_terms);
    ("precompute scalar workspace", `Quick, test_precompute_scalar_workspace);
    ("precompute staging", `Quick, test_precompute_staging);
    ("precompute staging at loop", `Quick, test_precompute_staging_at);
    ("precompute errors", `Quick, test_precompute_errors);
    ("split_up", `Quick, test_split_up);
    ("split_down", `Quick, test_split_down);
    ("fuse", `Quick, test_fuse);
    ("split+fuse round trip", `Quick, test_split_then_fuse_roundtrip);
    ("reorder", `Quick, test_reorder);
    ("reorder errors", `Quick, test_reorder_errors);
    ("split missing loop", `Quick, test_split_missing_loop);
    ("environment", `Quick, test_environment);
    ("map/accelerate reduce", `Quick, test_map_and_accelerate);
    ("map missing target", `Quick, test_map_missing_target);
    ("accelerate with staging", `Quick, test_accelerate_staged);
    ("auto bulk transfers", `Quick, test_auto_bulk_transfers);
    ("command trace", `Quick, test_trace);
    ("relation extents", `Quick, test_relation_extents);
    ("relation recoverable", `Quick, test_relation_recoverable);
    QCheck_alcotest.to_alcotest prop_schedules_preserve;
  ]
