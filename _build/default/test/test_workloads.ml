(* Tests for the dataset generators (Table 4 shapes) and the PRNG. *)

module T = Stardust_tensor.Tensor
module F = Stardust_tensor.Format
module D = Stardust_workloads.Datasets
module Prng = Stardust_workloads.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.float r in
    checkb "in [0,1)" true (x >= 0.0 && x < 1.0);
    let n = Prng.int r 17 in
    checkb "int bound" true (n >= 0 && n < 17)
  done

let test_random_matrix_density () =
  let m =
    D.random_matrix ~name:"m" ~format:(F.csr ()) ~rows:500 ~cols:500
      ~density:0.01 ()
  in
  let d = T.density m in
  checkb "density near target" true (d > 0.007 && d < 0.013)

let test_generators_deterministic () =
  let a = D.random_matrix ~seed:9 ~name:"a" ~format:(F.csr ()) ~rows:50 ~cols:50
      ~density:0.1 () in
  let b = D.random_matrix ~seed:9 ~name:"a" ~format:(F.csr ()) ~rows:50 ~cols:50
      ~density:0.1 () in
  checkb "same tensor" true (T.equal_approx a b)

let test_trefethen_structure () =
  let t = D.trefethen_like ~dim:64 ~format:(F.csr ()) () in
  (* diagonal plus power-of-two offsets only *)
  T.iter_nonzeros
    (fun c _ ->
      let off = abs (c.(0) - c.(1)) in
      checkb "offset is 0 or 2^k" true
        (off = 0 || off land (off - 1) = 0))
    t;
  checkb "diagonal present" true (T.get t [| 10; 10 |] <> 0.0)

let test_bcsstk_banded () =
  let t = D.bcsstk30_like ~dim:2000 ~format:(F.csr ()) () in
  T.iter_nonzeros
    (fun c _ -> checkb "within band" true (abs (c.(0) - c.(1)) <= 600))
    t;
  checkb "dense enough" true (T.density t > 1e-3)

let test_facebook_powerlaw () =
  let t = D.facebook_like ~dims:(50, 500, 500) ~density:1e-3 ~format:(F.csf 3) () in
  (* early temporal slices hold more activity than late ones *)
  let slice s =
    let n = ref 0 in
    T.iter_nonzeros (fun c _ -> if c.(0) = s then incr n) t;
    !n
  in
  checkb "power-law slices" true (slice 0 > slice 40)

let test_rotations_preserve_nnz () =
  let b = D.random_matrix ~name:"b" ~format:(F.csr ()) ~rows:40 ~cols:40
      ~density:0.1 () in
  let c = D.rotate_cols ~by:1 ~name:"c" b in
  checki "nnz preserved" (T.nnz b) (T.nnz c);
  let t3 = D.random_tensor3 ~name:"t" ~format:(F.ucc ()) ~dims:[ 10; 10; 10 ]
      ~density:0.1 () in
  let r3 = D.rotate_even_last ~name:"r" t3 in
  checkb "same dims" true (T.dims t3 = T.dims r3)

let test_dense_generators () =
  let rm = D.dense_matrix ~name:"d" ~format:(F.rm ()) ~rows:6 ~cols:7 () in
  checki "fully dense" (6 * 7) (T.nnz rm);
  (* rm and cm with the same seed hold the same logical matrix *)
  let cm = D.dense_matrix ~name:"d" ~format:(F.cm ()) ~rows:6 ~cols:7 () in
  checkb "same logical content" true (T.equal_approx rm cm);
  let v = D.dense_vector ~name:"v" ~dim:9 () in
  checki "vector dense" 9 (T.nnz v)

let test_small_random_bounds () =
  let t = D.small_random ~name:"s" ~format:(F.ucc ()) ~dims:[ 4; 5; 6 ]
      ~density:0.5 () in
  checkb "within dims" true
    (T.fold_nonzeros
       (fun acc c _ -> acc && c.(0) < 4 && c.(1) < 5 && c.(2) < 6)
       true t)

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng ranges", `Quick, test_prng_ranges);
    ("random matrix density", `Quick, test_random_matrix_density);
    ("generators deterministic", `Quick, test_generators_deterministic);
    ("trefethen structure", `Quick, test_trefethen_structure);
    ("bcsstk banded", `Quick, test_bcsstk_banded);
    ("facebook power law", `Quick, test_facebook_powerlaw);
    ("rotations preserve nnz", `Quick, test_rotations_preserve_nnz);
    ("dense generators", `Quick, test_dense_generators);
    ("small random bounds", `Quick, test_small_random_bounds);
  ]
