(* Tests for the index-notation AST, the parser, and the CIN IR. *)

module Ast = Stardust_ir.Ast
module P = Stardust_ir.Parser
module Cin = Stardust_ir.Cin

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let strings = Alcotest.list Alcotest.string

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let roundtrip s = Ast.assign_to_string (P.parse_assign s)

let test_parse_simple () =
  checks "spmv" "y(i) = A(i, j) * x(j)" (roundtrip "y(i) = A(i,j) * x(j)");
  checks "plus" "A(i, j) = B(i, j) + C(i, j)" (roundtrip "A(i,j)=B(i,j)+C(i,j)");
  checks "accum" "y(i) += A(i, j) * x(j)" (roundtrip "y(i) += A(i,j)*x(j)")

let test_parse_precedence () =
  let a = P.parse_assign "a = b + c * d" in
  (match a.Ast.rhs with
  | Ast.Bin (Ast.Add, Ast.Access { tensor = "b"; _ }, Ast.Bin (Ast.Mul, _, _)) -> ()
  | e -> Alcotest.failf "wrong tree: %a" Ast.pp_expr e);
  let a = P.parse_assign "a = (b + c) * d" in
  match a.Ast.rhs with
  | Ast.Bin (Ast.Mul, Ast.Bin (Ast.Add, _, _), _) -> ()
  | e -> Alcotest.failf "parens ignored: %a" Ast.pp_expr e

let test_parse_constants () =
  let a = P.parse_assign "y(i) = 0.5 * A(i,j) * x(j) + 0.25 * z(i)" in
  checkb "has consts" true
    (List.exists
       (function Ast.Const 0.5 -> true | _ -> false)
       (let rec leaves = function
          | Ast.Bin (_, a, b) -> leaves a @ leaves b
          | Ast.Neg e -> leaves e
          | e -> [ e ]
        in
        leaves a.Ast.rhs))

let test_parse_negation () =
  checks "sub" "y(i) = b(i) - A(i, j) * x(j)" (roundtrip "y(i) = b(i) - A(i,j)*x(j)");
  let a = P.parse_assign "a = -b * c" in
  match a.Ast.rhs with
  | Ast.Bin (Ast.Mul, Ast.Neg _, _) -> ()
  | e -> Alcotest.failf "wrong: %a" Ast.pp_expr e

let test_parse_scalars () =
  let a = P.parse_assign "alpha = B(i,j,k) * C(i,j,k)" in
  check strings "scalar lhs" [] a.Ast.lhs.Ast.indices;
  check strings "reductions" [ "i"; "j"; "k" ] (Ast.reduction_vars a)

let test_parse_errors () =
  let fails s =
    match P.parse_assign_opt s with
    | None -> ()
    | Some _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "y(i) = ";
  fails "y(i = A(i)";
  fails "= A(i)";
  fails "y(i) = A(i,)";
  fails "y(i) = A(i) $ B(i)";
  fails "y(i) = A(i) B(i)"

let test_parse_offsets () =
  (* the error position is the character offset *)
  match P.parse_assign "y(i) = A(i,j) ? x(j)" with
  | exception P.Parse_error (_, off) -> Alcotest.check Alcotest.int "offset" 14 off
  | _ -> Alcotest.fail "expected parse error"

(* ------------------------------------------------------------------ *)
(* AST queries                                                         *)
(* ------------------------------------------------------------------ *)

let sddmm = P.parse_assign "A(i,j) = B(i,j) * C(i,k) * D(j,k)"

let test_ast_queries () =
  check strings "tensors" [ "B"; "C"; "D" ] (Ast.tensors_of_expr sddmm.Ast.rhs);
  check strings "indices" [ "i"; "j"; "k" ] (Ast.indices_of_expr sddmm.Ast.rhs);
  check strings "reductions" [ "k" ] (Ast.reduction_vars sddmm);
  check strings "all vars" [ "i"; "j"; "k" ] (Ast.all_vars sddmm)

let test_ast_subst () =
  let e = Ast.subst_indices sddmm.Ast.rhs [ ("k", "kk") ] in
  check strings "renamed" [ "i"; "j"; "kk" ] (Ast.indices_of_expr e);
  let e = Ast.subst_tensors sddmm.Ast.rhs [ ("B", "B_on") ] in
  check strings "tensor renamed" [ "B_on"; "C"; "D" ] (Ast.tensors_of_expr e)

let test_linear_terms () =
  let a = P.parse_assign "y(i) = b(i) - A(i,j) * x(j) + c(i)" in
  let terms = Ast.linear_terms a.Ast.rhs in
  Alcotest.check Alcotest.int "three terms" 3 (List.length terms);
  check (Alcotest.list Alcotest.bool) "signs" [ false; true; false ]
    (List.map fst terms);
  (* rebuilding preserves the term list *)
  let rebuilt = Ast.of_linear_terms terms in
  Alcotest.check Alcotest.int "round trip" 3
    (List.length (Ast.linear_terms rebuilt))

(* ------------------------------------------------------------------ *)
(* CIN                                                                 *)
(* ------------------------------------------------------------------ *)

let test_concretize () =
  let s = Cin.concretize sddmm in
  check strings "loop order" [ "i"; "j"; "k" ] (Cin.bound_vars s);
  match s with
  | Cin.Forall { body = Cin.Forall { body = Cin.Forall { body = Cin.Assign a; _ }; _ }; _ }
    ->
      checkb "accum inserted" true a.Ast.accum
  | _ -> Alcotest.fail "wrong shape"

let test_concretize_no_reduction () =
  let a = P.parse_assign "A(i,j) = B(i,j) + C(i,j)" in
  match Cin.concretize a with
  | Cin.Forall { body = Cin.Forall { body = Cin.Assign a; _ }; _ } ->
      checkb "no accum" false a.Ast.accum
  | _ -> Alcotest.fail "wrong shape"

let test_cin_queries () =
  let s = Cin.concretize sddmm in
  check strings "read" [ "B"; "C"; "D" ] (Cin.tensors_read s);
  check strings "written" [ "A" ] (Cin.tensors_written s);
  check strings "all" [ "A"; "B"; "C"; "D" ] (Cin.all_tensors s);
  checkb "well formed" true (Cin.is_well_formed s);
  checkb "assignment found" true (List.length (Cin.assignments s) = 1)

let test_cin_unbound () =
  let s = Cin.forall "i" (Cin.Assign (P.parse_assign "y(i) = x(j)")) in
  checkb "j unbound" true (List.mem ("x", "j") (Cin.unbound_indices s));
  checkb "not well formed" false (Cin.is_well_formed s)

let test_cin_replace () =
  let s = Cin.concretize sddmm in
  let target =
    Cin.forall "k" (Cin.Assign { sddmm with accum = true })
  in
  checkb "contains inner loop" true (Cin.contains ~target s);
  let replaced =
    Cin.replace_first ~target
      ~replacement:(Cin.Mapped { backend = Cin.Spatial; func = Cin.Reduction;
                                 config = None; body = target })
      s
  in
  checkb "replaced" true (Option.is_some replaced);
  let missing =
    Cin.replace_first ~target:(Cin.forall "zz" target) ~replacement:target s
  in
  checkb "no match" true (Option.is_none missing)

let test_cin_subst () =
  let s = Cin.concretize sddmm in
  let s' = Cin.subst_tensors s [ ("B", "B_on") ] in
  check strings "renamed reads" [ "B_on"; "C"; "D" ] (Cin.tensors_read s');
  let s'' = Cin.subst_indices s [ ("i", "i0") ] in
  check strings "renamed loops" [ "i0"; "j"; "k" ] (Cin.bound_vars s'')

let test_cin_where () =
  let producer = Cin.forall "j" (Cin.Assign (P.parse_assign "ws += A(i,j) * x(j)")) in
  let consumer = Cin.Assign (P.parse_assign "y(i) = ws") in
  let s = Cin.forall "i" (Cin.where consumer producer) in
  check strings "written includes temp" [ "ws"; "y" ]
    (List.sort compare (Cin.tensors_written s));
  checkb "well formed" true (Cin.is_well_formed s)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Pretty printing is stable enough to grep in docs/tests. *)
let test_cin_pp () =
  let s = Cin.concretize (P.parse_assign "y(i) = A(i,j) * x(j)") in
  let str = Cin.to_string s in
  checkb "mentions forall i" true (contains str "forall(i)");
  checkb "mentions +=" true (contains str "+=")

let suite =
  [
    ("parse simple", `Quick, test_parse_simple);
    ("parse precedence", `Quick, test_parse_precedence);
    ("parse constants", `Quick, test_parse_constants);
    ("parse negation", `Quick, test_parse_negation);
    ("parse scalar lhs", `Quick, test_parse_scalars);
    ("parse errors", `Quick, test_parse_errors);
    ("parse error offsets", `Quick, test_parse_offsets);
    ("ast queries", `Quick, test_ast_queries);
    ("ast substitution", `Quick, test_ast_subst);
    ("linear terms", `Quick, test_linear_terms);
    ("concretize reductions", `Quick, test_concretize);
    ("concretize plain", `Quick, test_concretize_no_reduction);
    ("cin queries", `Quick, test_cin_queries);
    ("cin unbound detection", `Quick, test_cin_unbound);
    ("cin replace", `Quick, test_cin_replace);
    ("cin substitution", `Quick, test_cin_subst);
    ("cin where", `Quick, test_cin_where);
    ("cin printing", `Quick, test_cin_pp);
  ]
