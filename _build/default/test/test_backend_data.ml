(* Shared small validation datasets for end-to-end kernel tests. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module D = Stardust_workloads.Datasets

let sp ?(seed = 42) name format dims density =
  D.small_random ~seed ~name ~format ~dims ~density ()

(** Per kernel: small inputs exercising the same formats as the paper. *)
let small_inputs : (string * (string * T.t) list) list =
  [
    ("SpMV", [ ("A", sp "A" (F.csr ()) [ 8; 10 ] 0.3);
               ("x", D.dense_vector ~name:"x" ~dim:10 ()) ]);
    ("Plus3",
      [ ("B", sp ~seed:1 "B" (F.csr ()) [ 8; 10 ] 0.3);
        ("C", sp ~seed:2 "C" (F.csr ()) [ 8; 10 ] 0.3);
        ("D", sp ~seed:3 "D" (F.csr ()) [ 8; 10 ] 0.3) ]);
    ("SDDMM",
      [ ("B", sp "B" (F.csr ()) [ 6; 7 ] 0.35);
        ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:6 ~cols:5 ());
        ("D", D.dense_matrix ~seed:5 ~name:"D" ~format:(F.rm ()) ~rows:7 ~cols:5 ()) ]);
    ("MatTransMul",
      [ ("A", sp "A" (F.csc ()) [ 9; 8 ] 0.3);
        ("x", D.dense_vector ~name:"x" ~dim:9 ());
        ("z", D.dense_vector ~seed:6 ~name:"z" ~dim:8 ()) ]);
    ("Residual",
      [ ("A", sp "A" (F.csr ()) [ 8; 10 ] 0.3);
        ("x", D.dense_vector ~name:"x" ~dim:10 ());
        ("b", D.dense_vector ~seed:8 ~name:"b" ~dim:8 ()) ]);
    ("TTV",
      [ ("B", sp "B" (F.csf 3) [ 4; 5; 6 ] 0.3);
        ("c", D.dense_vector ~name:"c" ~dim:6 ()) ]);
    ("TTM",
      [ ("B", sp "B" (F.csf 3) [ 4; 5; 6 ] 0.3);
        ("C", D.dense_matrix ~name:"C" ~format:(F.cm ()) ~rows:7 ~cols:6 ()) ]);
    ("MTTKRP",
      [ ("B", sp "B" (F.csf 3) [ 4; 5; 6 ] 0.3);
        ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:5 ~cols:8 ());
        ("D", D.dense_matrix ~seed:9 ~name:"D" ~format:(F.rm ()) ~rows:6 ~cols:8 ()) ]);
    ("InnerProd",
      [ ("B", sp ~seed:10 "B" (F.ucc ()) [ 4; 5; 6 ] 0.4);
        ("C", sp ~seed:11 "C" (F.ucc ()) [ 4; 5; 6 ] 0.4) ]);
    ("Plus2",
      [ ("B", sp ~seed:12 "B" (F.ucc ()) [ 4; 5; 6 ] 0.4);
        ("C", sp ~seed:13 "C" (F.ucc ()) [ 4; 5; 6 ] 0.4) ]);
  ]
