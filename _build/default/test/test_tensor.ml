(* Unit and property tests for the tensor substrate:
   formats, COO building, level-format packing, access, conversion,
   statistics. *)

module F = Stardust_tensor.Format
module Coo = Stardust_tensor.Coo
module T = Stardust_tensor.Tensor
module Stats = Stardust_tensor.Stats

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Format                                                              *)
(* ------------------------------------------------------------------ *)

let test_format_constructors () =
  checki "csr order" 2 (F.order (F.csr ()));
  checki "csf3 order" 3 (F.order (F.csf 3));
  check (Alcotest.list Alcotest.int) "csc mode order" [ 1; 0 ]
    (F.csc ()).F.mode_order;
  checkb "csr row-major" true ((F.csr ()).F.mode_order = [ 0; 1 ]);
  checkb "dense is dense" true (F.is_fully_dense (F.rm ()));
  checkb "csr not dense" false (F.is_fully_dense (F.csr ()));
  checki "ucc compressed count" 2 (F.num_compressed (F.ucc ()));
  checki "scalar order" 0 (F.order (F.make []))

let test_format_regions () =
  checkb "default off-chip" false (F.is_on_chip (F.csr ()));
  checkb "on_chip" true (F.is_on_chip (F.on_chip (F.csr ())));
  checkb "off_chip round trip" false
    (F.is_on_chip (F.off_chip (F.on_chip (F.csr ()))))

let test_format_level_maps () =
  let csc = F.csc () in
  checki "csc level of dim 0" 1 (F.level_of_dim csc 0);
  checki "csc level of dim 1" 0 (F.level_of_dim csc 1);
  checki "csc dim of level 0" 1 (F.dim_of_level csc 0);
  checkb "level kinds" true (F.level_kind csc 1 = F.Compressed)

let test_format_validation () =
  Alcotest.check_raises "bad mode order"
    (Invalid_argument "Format.make: mode_order is not a permutation")
    (fun () -> ignore (F.make ~mode_order:[ 0; 0 ] [ F.Dense; F.Dense ]));
  Alcotest.check_raises "mode order length"
    (Invalid_argument "Format.make: mode_order length mismatch") (fun () ->
      ignore (F.make ~mode_order:[ 0 ] [ F.Dense; F.Dense ]))

let test_format_short_names () =
  check Alcotest.string "csr" "csr" (F.short_name (F.csr ()));
  check Alcotest.string "csc" "csc" (F.short_name (F.csc ()));
  check Alcotest.string "csf3" "csf3" (F.short_name (F.csf 3));
  check Alcotest.string "ucc" "ucc" (F.short_name (F.ucc ()));
  check Alcotest.string "dv" "dv" (F.short_name (F.dv ()))

(* ------------------------------------------------------------------ *)
(* COO                                                                 *)
(* ------------------------------------------------------------------ *)

let test_coo_dedup () =
  let c = Coo.of_list [ 3; 3 ] [ ([ 0; 1 ], 1.0); ([ 0; 1 ], 2.0); ([ 2; 2 ], 5.0) ] in
  checki "nnz after dedup" 2 (Coo.nnz c);
  let fin = Coo.finalize c in
  checkf "summed" 3.0 (snd (List.hd fin))

let test_coo_zero_drop () =
  let c = Coo.of_list [ 2; 2 ] [ ([ 0; 0 ], 1.0); ([ 0; 0 ], -1.0) ] in
  checki "cancelled entries dropped" 0 (Coo.nnz c)

let test_coo_sorted_by_mode_order () =
  let c = Coo.of_list [ 2; 2 ] [ ([ 0; 1 ], 1.0); ([ 1; 0 ], 2.0) ] in
  let row_major = Coo.finalize c in
  let col_major = Coo.finalize ~mode_order:[ 1; 0 ] c in
  checkf "row major first" 1.0 (snd (List.hd row_major));
  checkf "col major first" 2.0 (snd (List.hd col_major))

let test_coo_bounds () =
  let c = Coo.create [| 2; 2 |] in
  Alcotest.check_raises "oob"
    (Invalid_argument "Coo.add: coordinate 0 out of bounds (2 not in [0,2))")
    (fun () -> Coo.add c [| 2; 0 |] 1.0);
  Alcotest.check_raises "arity" (Invalid_argument "Coo.add: wrong coordinate arity")
    (fun () -> Coo.add c [| 0 |] 1.0)

let test_coo_growth () =
  let c = Coo.create [| 100; 100 |] in
  for i = 0 to 99 do
    for j = 0 to 9 do
      Coo.add c [| i; j |] 1.0
    done
  done;
  checki "length" 1000 (Coo.length c);
  checki "nnz" 1000 (Coo.nnz c)

(* ------------------------------------------------------------------ *)
(* Tensor packing and access                                           *)
(* ------------------------------------------------------------------ *)

let entries2 = [ ([ 0; 1 ], 2.0); ([ 0; 3 ], 1.5); ([ 2; 0 ], -1.0); ([ 3; 3 ], 4.0) ]

let mk fmt = T.of_entries ~name:"t" ~format:fmt ~dims:[ 4; 4 ] entries2

let test_pack_csr () =
  let t = mk (F.csr ()) in
  checki "nnz" 4 (T.nnz t);
  check (Alcotest.array Alcotest.int) "pos" [| 0; 2; 2; 3; 4 |] (T.pos_array t 1);
  check (Alcotest.array Alcotest.int) "crd" [| 1; 3; 0; 3 |] (T.crd_array t 1);
  checkf "get present" 2.0 (T.get t [| 0; 1 |]);
  checkf "get absent" 0.0 (T.get t [| 1; 1 |])

let test_pack_csc () =
  let t = mk (F.csc ()) in
  checki "nnz" 4 (T.nnz t);
  (* column-major: level-0 over columns *)
  check (Alcotest.array Alcotest.int) "pos" [| 0; 1; 2; 2; 4 |] (T.pos_array t 1);
  checkf "same logical content" 0.0 (T.max_abs_diff t (mk (F.csr ())))

let test_pack_dense () =
  let t = mk (F.rm ()) in
  checki "dense num_vals" 16 (T.num_vals t);
  checki "dense nnz" 4 (T.nnz t);
  checkf "dense get" (-1.0) (T.get t [| 2; 0 |])

let test_pack_csf () =
  let entries =
    [ ([ 0; 0; 1 ], 1.0); ([ 0; 2; 0 ], 2.0); ([ 1; 1; 1 ], 3.0); ([ 1; 1; 2 ], 4.0) ]
  in
  let t = T.of_entries ~name:"t3" ~format:(F.csf 3) ~dims:[ 2; 3; 4 ] entries in
  checki "level0 positions" 2 (T.num_positions t 0);
  checki "level1 positions" 3 (T.num_positions t 1);
  checki "level2 positions" 4 (T.num_positions t 2);
  checkf "deep get" 4.0 (T.get t [| 1; 1; 2 |]);
  checkf "deep absent" 0.0 (T.get t [| 1; 2; 2 |])

let test_iter_order () =
  let t = mk (F.csr ()) in
  let seen = ref [] in
  T.iter_nonzeros (fun c v -> seen := (Array.to_list c, v) :: !seen) t;
  check (Alcotest.list (Alcotest.pair (Alcotest.list Alcotest.int) (Alcotest.float 0.0)))
    "storage order"
    [ ([ 0; 1 ], 2.0); ([ 0; 3 ], 1.5); ([ 2; 0 ], -1.0); ([ 3; 3 ], 4.0) ]
    (List.rev !seen)

let test_to_dense () =
  let t = mk (F.csr ()) in
  let d = T.to_dense t in
  checki "dense length" 16 (Array.length d);
  checkf "dense cell" 1.5 d.(3);
  checkf "dense zero" 0.0 d.(5)

let test_convert_roundtrip () =
  let t = mk (F.csr ()) in
  List.iter
    (fun fmt ->
      let t' = T.convert ~format:fmt t in
      checkb
        ("convert to " ^ F.short_name fmt)
        true (T.equal_approx t t'))
    [ F.csc (); F.rm (); F.cm (); F.make [ F.Compressed; F.Compressed ];
      F.make [ F.Compressed; F.Dense ] ]

let test_scalar () =
  let s = T.scalar 42.0 in
  checkb "is scalar" true (T.is_scalar s);
  checkf "value" 42.0 (T.scalar_value s);
  checkf "get" 42.0 (T.get s [||]);
  checki "nnz" 1 (T.nnz s)

let test_of_arrays_validation () =
  let bad_pos () =
    ignore
      (T.of_arrays ~name:"x" ~format:(F.sv ()) ~dims:[ 4 ]
         ~levels:[| T.Compressed_level { pos = [| 0; 2 |]; crd = [| 1 |] } |]
         ~vals:[| 1.0 |])
  in
  Alcotest.check_raises "crd length mismatch"
    (Invalid_argument "Tensor.of_arrays: crd length mismatch") bad_pos;
  let bad_crd () =
    ignore
      (T.of_arrays ~name:"x" ~format:(F.sv ()) ~dims:[ 4 ]
         ~levels:[| T.Compressed_level { pos = [| 0; 1 |]; crd = [| 9 |] } |]
         ~vals:[| 1.0 |])
  in
  Alcotest.check_raises "coordinate out of bounds"
    (Invalid_argument "Tensor.of_arrays: coordinate out of bounds") bad_crd;
  let non_monotone () =
    ignore
      (T.of_arrays ~name:"x" ~format:(F.csr ()) ~dims:[ 2; 2 ]
         ~levels:
           [| T.Dense_level { dim = 2 };
              T.Compressed_level { pos = [| 0; 2; 1 |]; crd = [| 0; 1 |] } |]
         ~vals:[| 1.0; 2.0 |])
  in
  Alcotest.check_raises "pos not monotone"
    (Invalid_argument "Tensor.of_arrays: pos not monotone") non_monotone

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let t = mk (F.csr ()) in
  let s = Stats.of_tensor t in
  checki "nnz" 4 s.Stats.nnz;
  checkf "density" 0.25 s.Stats.density;
  check (Alcotest.array Alcotest.int) "level positions" [| 4; 4 |]
    s.Stats.level_positions;
  checki "max fiber" 2 (Stats.max_fiber_len t 1);
  checki "nonempty rows" 3 (Stats.nonempty_rows t)

let test_stats_coiter () =
  let a =
    T.of_entries ~name:"a" ~format:(F.csr ()) ~dims:[ 3; 3 ]
      [ ([ 0; 0 ], 1.); ([ 0; 1 ], 1.); ([ 1; 2 ], 1.) ]
  in
  let b =
    T.of_entries ~name:"b" ~format:(F.csr ()) ~dims:[ 3; 3 ]
      [ ([ 0; 1 ], 1.); ([ 1; 2 ], 1.); ([ 2; 2 ], 1.) ]
  in
  checki "intersection full depth" 2 (Stats.prefix_coiter_count ~union:false a b ~depth:1);
  checki "union full depth" 4 (Stats.prefix_coiter_count ~union:true a b ~depth:1);
  checki "intersection rows" 2 (Stats.prefix_coiter_count ~union:false a b ~depth:0);
  checki "union rows" 3 (Stats.prefix_coiter_count ~union:true a b ~depth:0);
  checki "union nnz agrees" (Stats.union_nnz a b)
    (Stats.prefix_coiter_count ~union:true a b ~depth:1);
  checki "intersection nnz agrees" (Stats.intersection_nnz a b)
    (Stats.prefix_coiter_count ~union:false a b ~depth:1)

let test_fiber_launch_total () =
  (* fibers of lengths 2, 0, 1, 1: with par 16 each nonempty costs 1 *)
  let t = mk (F.csr ()) in
  checkf "par 16" 3.0 (Stats.fiber_launch_total ~par:16 t 1);
  checkf "par 1" 4.0 (Stats.fiber_launch_total ~par:1 t 1);
  checkf "par 2" 3.0 (Stats.fiber_launch_total ~par:2 t 1)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_entries dims =
  let open QCheck in
  let coord = List.mapi (fun _ d -> Gen.int_bound (d - 1)) dims in
  let entry =
    Gen.map2 (fun c v -> (c, v))
      (Gen.flatten_l coord)
      (Gen.map (fun x -> float_of_int (x + 1)) (Gen.int_bound 50))
  in
  make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (c, v) ->
             Printf.sprintf "(%s)=%g" (String.concat "," (List.map string_of_int c)) v)
            l))
    (Gen.list_size (Gen.int_bound 30) entry)

let dedup_last entries =
  (* matching Coo semantics: duplicates sum *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, v) ->
      Hashtbl.replace tbl c (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl c)))
    entries;
  tbl

let prop_pack_get =
  QCheck.Test.make ~name:"pack/get agrees with summed entries" ~count:200
    (arb_entries [ 5; 6 ])
    (fun entries ->
      let t = T.of_entries ~name:"p" ~format:(F.csr ()) ~dims:[ 5; 6 ] entries in
      let tbl = dedup_last entries in
      Hashtbl.fold
        (fun c v acc -> acc && Float.abs (T.get t (Array.of_list c) -. v) < 1e-9)
        tbl true)

let prop_convert_preserves =
  QCheck.Test.make ~name:"format conversion preserves values" ~count:100
    (arb_entries [ 4; 5 ])
    (fun entries ->
      let t = T.of_entries ~name:"p" ~format:(F.csr ()) ~dims:[ 4; 5 ] entries in
      List.for_all
        (fun fmt -> T.equal_approx t (T.convert ~format:fmt t))
        [ F.csc (); F.rm (); F.make [ F.Compressed; F.Compressed ] ])

let prop_csf_roundtrip =
  QCheck.Test.make ~name:"order-3 pack round-trips through entries" ~count:100
    (arb_entries [ 3; 4; 5 ])
    (fun entries ->
      let t = T.of_entries ~name:"p" ~format:(F.csf 3) ~dims:[ 3; 4; 5 ] entries in
      let t' =
        T.of_entries ~name:"p" ~format:(F.csf 3) ~dims:[ 3; 4; 5 ]
          (List.map (fun (c, v) -> (Array.to_list c, v)) (T.to_entries t))
      in
      T.equal_approx t t')

let prop_coiter_counts_bounds =
  QCheck.Test.make ~name:"coiter counts: |A∩B| <= min <= max <= |A∪B|" ~count:100
    (QCheck.pair (arb_entries [ 4; 4 ]) (arb_entries [ 4; 4 ]))
    (fun (ea, eb) ->
      let a = T.of_entries ~name:"a" ~format:(F.csr ()) ~dims:[ 4; 4 ] ea in
      let b = T.of_entries ~name:"b" ~format:(F.csr ()) ~dims:[ 4; 4 ] eb in
      let inter = Stats.prefix_coiter_count ~union:false a b ~depth:1 in
      let union = Stats.prefix_coiter_count ~union:true a b ~depth:1 in
      inter <= min (T.nnz a) (T.nnz b)
      && union >= max (T.nnz a) (T.nnz b)
      && inter + union = T.nnz a + T.nnz b)

let prop_num_positions_consistent =
  QCheck.Test.make ~name:"level position counts are monotone products" ~count:100
    (arb_entries [ 3; 4; 5 ])
    (fun entries ->
      let t = T.of_entries ~name:"p" ~format:(F.ucc ()) ~dims:[ 3; 4; 5 ] entries in
      T.num_positions t 0 = 3
      && T.num_positions t 2 = T.num_vals t
      && T.num_positions t 1 <= T.num_positions t 2 + 1000000
      && T.nnz t <= T.num_vals t)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pack_get;
      prop_convert_preserves;
      prop_csf_roundtrip;
      prop_coiter_counts_bounds;
      prop_num_positions_consistent;
    ]

let suite =
  [
    ("format constructors", `Quick, test_format_constructors);
    ("format regions", `Quick, test_format_regions);
    ("format level maps", `Quick, test_format_level_maps);
    ("format validation", `Quick, test_format_validation);
    ("format short names", `Quick, test_format_short_names);
    ("coo dedup", `Quick, test_coo_dedup);
    ("coo zero drop", `Quick, test_coo_zero_drop);
    ("coo mode order", `Quick, test_coo_sorted_by_mode_order);
    ("coo bounds", `Quick, test_coo_bounds);
    ("coo growth", `Quick, test_coo_growth);
    ("pack csr", `Quick, test_pack_csr);
    ("pack csc", `Quick, test_pack_csc);
    ("pack dense", `Quick, test_pack_dense);
    ("pack csf", `Quick, test_pack_csf);
    ("iteration order", `Quick, test_iter_order);
    ("to_dense", `Quick, test_to_dense);
    ("convert round trips", `Quick, test_convert_roundtrip);
    ("scalar tensors", `Quick, test_scalar);
    ("of_arrays validation", `Quick, test_of_arrays_validation);
    ("stats basic", `Quick, test_stats_basic);
    ("stats coiter", `Quick, test_stats_coiter);
    ("fiber launch totals", `Quick, test_fiber_launch_total);
  ]
  @ List.map (fun (n, s, f) -> (n, s, f)) qcheck_cases
