(* Direct tests of the Spatial IR execution semantics (via hand-written
   programs through the raw simulator entry point), the code generator,
   and tests of the extended long-tail kernel suite and auto-scheduler. *)

module Ir = Stardust_spatial.Spatial_ir
module Codegen = Stardust_spatial.Codegen
module Sim = Stardust_capstan.Sim
module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module P = Stardust_ir.Parser
module K = Stardust_core.Kernels
module KX = Stardust_core.Kernels_extra
module Auto = Stardust_core.Autoschedule
module C = Stardust_core.Compile
module Ref = Stardust_vonneumann.Reference
module Imp = Stardust_vonneumann.Imp_interp
module D = Stardust_workloads.Datasets
open Ir

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)
let arr = Alcotest.array (Alcotest.float 1e-9)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let run ?config prog ~dram_init = Sim.execute_program ?config prog ~dram_init

(* ------------------------------------------------------------------ *)
(* Hand-written IR programs                                            *)
(* ------------------------------------------------------------------ *)

let test_exec_foreach_copy () =
  (* out[i] = 2 * in[i] through an SRAM staging buffer *)
  let prog =
    { name = "copy2x"; env = []; host_params = [];
      dram =
        [ { mem = "in_dram"; kind = Dram_dense; size = Int 4 };
          { mem = "out_dram"; kind = Dram_dense; size = Int 4 } ];
      accel =
        [ Alloc { mem = "buf"; kind = Sram_dense; size = Int 4 };
          Load_burst { dst = "buf"; src = "in_dram"; lo = Int 0; hi = Int 4; par = 1 };
          Alloc { mem = "out"; kind = Sram_dense; size = Int 4 };
          Foreach
            { len = Int 4; par = 1; bind = "i"; trip = Trip_const 4;
              body =
                [ Write { mem = "out"; idx = Some (var "i");
                          value = Bin (Mul, Flt 2.0, sram_read "buf" (var "i"));
                          accum = false } ] };
          Store_burst { dst = "out_dram"; src = "out"; lo = Int 0; len = Int 4; par = 1 } ] }
  in
  let dump, report = run prog ~dram_init:[ ("in_dram", [| 1.; 2.; 3.; 4. |]) ] in
  Alcotest.check arr "doubled" [| 2.; 4.; 6.; 8. |] (List.assoc "out_dram" dump);
  checkb "cycles counted" true (report.Sim.cycles > 0.0)

let test_exec_reduce_accumulates () =
  (* Reduce accumulates into its target register across launches *)
  let prog =
    { name = "racc"; env = []; host_params = [];
      dram = [ { mem = "out_dram"; kind = Dram_dense; size = Int 1 } ];
      accel =
        [ Alloc { mem = "acc"; kind = Reg; size = Int 1 };
          Foreach
            { len = Int 3; par = 1; bind = "i"; trip = Trip_const 3;
              body =
                [ Reduce
                    { target = "acc"; init = Flt 0.0; len = Int 4; par = 1;
                      bind = "j"; body = []; expr = Flt 1.0; trip = Trip_const 4 } ] };
          Store_burst { dst = "out_dram"; src = "acc"; lo = Int 0; len = Int 1; par = 1 } ] }
  in
  let dump, _ = run prog ~dram_init:[] in
  checkf "3 launches x 4" 12.0 (List.assoc "out_dram" dump).(0)

let test_exec_fifo_order_and_underflow () =
  let prog =
    { name = "fifo"; env = []; host_params = [];
      dram =
        [ { mem = "in_dram"; kind = Dram_dense; size = Int 3 };
          { mem = "out_dram"; kind = Dram_dense; size = Int 3 } ];
      accel =
        [ Alloc { mem = "f"; kind = Fifo 16; size = Int 16 };
          Load_burst { dst = "f"; src = "in_dram"; lo = Int 0; hi = Int 3; par = 1 };
          Store_burst { dst = "out_dram"; src = "f"; lo = Int 0; len = Int 3; par = 1 } ] }
  in
  let dump, _ = run prog ~dram_init:[ ("in_dram", [| 7.; 8.; 9. |]) ] in
  Alcotest.check arr "fifo order" [| 7.; 8.; 9. |] (List.assoc "out_dram" dump);
  (* draining more than enqueued raises *)
  let bad =
    { prog with
      accel =
        [ Alloc { mem = "f"; kind = Fifo 16; size = Int 16 };
          Load_burst { dst = "f"; src = "in_dram"; lo = Int 0; hi = Int 2; par = 1 };
          Store_burst { dst = "out_dram"; src = "f"; lo = Int 0; len = Int 3; par = 1 } ] }
  in
  match run bad ~dram_init:[ ("in_dram", [| 1.; 2.; 3. |]) ] with
  | exception Sim.Sim_error _ -> ()
  | _ -> Alcotest.fail "FIFO underflow not detected"

let test_exec_predicated_reads () =
  (* negative index reads return 0 (absent union lanes) *)
  let prog =
    { name = "pred"; env = []; host_params = [];
      dram = [ { mem = "out_dram"; kind = Dram_dense; size = Int 2 } ];
      accel =
        [ Alloc { mem = "m"; kind = Sram_dense; size = Int 4 };
          Write { mem = "m"; idx = Some (Int 0); value = Flt 5.0; accum = false };
          Alloc { mem = "o"; kind = Sram_dense; size = Int 2 };
          Write { mem = "o"; idx = Some (Int 0);
                  value = Read ("m", [ Int (-1) ]); accum = false };
          Write { mem = "o"; idx = Some (Int 1);
                  value = Mux (Int (-1), Flt 9.0, Flt 3.0); accum = false };
          Store_burst { dst = "out_dram"; src = "o"; lo = Int 0; len = Int 2; par = 1 } ] }
  in
  let dump, _ = run prog ~dram_init:[] in
  let o = List.assoc "out_dram" dump in
  checkf "negative read is 0" 0.0 o.(0);
  checkf "mux takes else branch" 3.0 o.(1)

let test_exec_scan_and_or () =
  (* union and intersection scans over two bit-vectors *)
  let mk op out_len =
    { name = "scan"; env = []; host_params = [];
      dram =
        [ { mem = "a_dram"; kind = Dram_dense; size = Int 3 };
          { mem = "b_dram"; kind = Dram_dense; size = Int 3 };
          { mem = "out_dram"; kind = Dram_dense; size = Int out_len } ];
      accel =
        [ Alloc { mem = "fa"; kind = Fifo 16; size = Int 16 };
          Load_burst { dst = "fa"; src = "a_dram"; lo = Int 0; hi = Int 3; par = 1 };
          Alloc { mem = "fb"; kind = Fifo 16; size = Int 16 };
          Load_burst { dst = "fb"; src = "b_dram"; lo = Int 0; hi = Int 3; par = 1 };
          Alloc { mem = "bva"; kind = Bit_vector; size = Int 8 };
          Gen_bitvector { bv = "bva"; crd_mem = "fa"; count = Int 3;
                          trip = Trip_const 3 };
          Alloc { mem = "bvb"; kind = Bit_vector; size = Int 8 };
          Gen_bitvector { bv = "bvb"; crd_mem = "fb"; count = Int 3;
                          trip = Trip_const 3 };
          Alloc { mem = "out"; kind = Sram_dense; size = Int 8 };
          Alloc { mem = "cnt"; kind = Reg; size = Int 1 };
          Foreach_scan
            { scan = { op; bvs = [ "bva"; "bvb" ]; scan_par = 1;
                       scan_len = Int 8; bind_pos = [ "pa"; "pb" ];
                       bind_out = Some "o"; bind_coord = "c" };
              trip = Trip_const 0;
              body =
                [ Write { mem = "out"; idx = Some (var "o"); value = var "c";
                          accum = false };
                  Write { mem = "cnt"; idx = None; value = Int 1; accum = true } ] };
          Store_burst { dst = "out_dram"; src = "out"; lo = Int 0;
                        len = Int out_len; par = 1 } ] }
  in
  (* A = {1,3,5}, B = {3,5,7} *)
  let init = [ ("a_dram", [| 1.; 3.; 5. |]); ("b_dram", [| 3.; 5.; 7. |]) ] in
  let dump, _ = run (mk Scan_or 4) ~dram_init:init in
  Alcotest.check arr "union coords" [| 1.; 3.; 5.; 7. |] (List.assoc "out_dram" dump);
  let dump, _ = run (mk Scan_and 2) ~dram_init:init in
  Alcotest.check arr "intersection coords" [| 3.; 5. |] (List.assoc "out_dram" dump)

let test_exec_scan_rank_binds () =
  (* scan position binds are per-input ordinals, -1 when absent *)
  let prog =
    { name = "ranks"; env = []; host_params = [];
      dram =
        [ { mem = "a_dram"; kind = Dram_dense; size = Int 2 };
          { mem = "b_dram"; kind = Dram_dense; size = Int 2 };
          { mem = "out_dram"; kind = Dram_dense; size = Int 8 } ];
      accel =
        [ Alloc { mem = "fa"; kind = Fifo 16; size = Int 16 };
          Load_burst { dst = "fa"; src = "a_dram"; lo = Int 0; hi = Int 2; par = 1 };
          Alloc { mem = "fb"; kind = Fifo 16; size = Int 16 };
          Load_burst { dst = "fb"; src = "b_dram"; lo = Int 0; hi = Int 2; par = 1 };
          Alloc { mem = "bva"; kind = Bit_vector; size = Int 8 };
          Gen_bitvector { bv = "bva"; crd_mem = "fa"; count = Int 2; trip = Trip_const 2 };
          Alloc { mem = "bvb"; kind = Bit_vector; size = Int 8 };
          Gen_bitvector { bv = "bvb"; crd_mem = "fb"; count = Int 2; trip = Trip_const 2 };
          Alloc { mem = "out"; kind = Sram_dense; size = Int 8 };
          Foreach_scan
            { scan = { op = Scan_or; bvs = [ "bva"; "bvb" ]; scan_par = 1;
                       scan_len = Int 8; bind_pos = [ "pa"; "pb" ];
                       bind_out = Some "o"; bind_coord = "c" };
              trip = Trip_const 0;
              body =
                [ Write { mem = "out"; idx = Some (Bin (Mul, var "o", Int 2));
                          value = var "pa"; accum = false };
                  Write { mem = "out";
                          idx = Some (Bin (Add, Bin (Mul, var "o", Int 2), Int 1));
                          value = var "pb"; accum = false } ] };
          Store_burst { dst = "out_dram"; src = "out"; lo = Int 0; len = Int 8; par = 1 } ] }
  in
  (* A = {2,4}, B = {4,6}: union order 2,4,6 *)
  let dump, _ =
    run prog ~dram_init:[ ("a_dram", [| 2.; 4. |]); ("b_dram", [| 4.; 6. |]) ]
  in
  let o = List.assoc "out_dram" dump in
  (* coord 2: pa=0 pb=-1; coord 4: pa=1 pb=0; coord 6: pa=-1 pb=1 *)
  Alcotest.check arr "ranks" [| 0.; -1.; 1.; 0.; -1.; 1.; 0.; 0. |] o

let test_codegen_pretty () =
  let prog =
    { name = "pp"; env = [ ("ip", 4) ]; host_params = [];
      dram = [ { mem = "x_dram"; kind = Dram_sparse; size = Int 8 } ];
      accel =
        [ Alloc { mem = "r"; kind = Reg; size = Int 1 };
          Reduce { target = "r"; init = Flt 0.0; len = Int 8; par = 4; bind = "i";
                   body = []; expr = Read ("x_dram", [ var "i" ]);
                   trip = Trip_const 8 } ] }
  in
  let code = Codegen.to_string prog in
  checkb "spatial class" true (contains code "extends SpatialApp");
  checkb "sparse dram comment" true (contains code "// sparse");
  checkb "reduce" true (contains code "Reduce(r)(8 by 1 par 4)");
  checkb "env val" true (contains code "val ip = 4")

(* ------------------------------------------------------------------ *)
(* Extended (long-tail) kernels: four-way agreement                    *)
(* ------------------------------------------------------------------ *)

let extra_inputs = function
  | "SpMM" ->
      [ ("B", D.small_random ~seed:21 ~name:"B" ~format:(F.csr ()) ~dims:[ 7; 8 ]
            ~density:0.3 ());
        ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:8 ~cols:5 ()) ]
  | "SvAdd" | "SvAxpy" | "SvDot" ->
      [ ("a", D.small_random ~seed:22 ~name:"a" ~format:(F.sv ()) ~dims:[ 12 ]
            ~density:0.4 ());
        ("b", D.small_random ~seed:23 ~name:"b" ~format:(F.sv ()) ~dims:[ 12 ]
            ~density:0.4 ()) ]
  | "Hadamard" | "SpAdd" ->
      [ ("B", D.small_random ~seed:24 ~name:"B" ~format:(F.csr ()) ~dims:[ 7; 8 ]
            ~density:0.35 ());
        ("C", D.small_random ~seed:25 ~name:"C" ~format:(F.csr ()) ~dims:[ 7; 8 ]
            ~density:0.35 ()) ]
  | "RowSums" ->
      [ ("A", D.small_random ~seed:26 ~name:"A" ~format:(F.csr ()) ~dims:[ 7; 8 ]
            ~density:0.3 ());
        ("o", T.of_entries ~name:"o" ~format:(F.dv ()) ~dims:[ 8 ]
            (List.init 8 (fun i -> ([ i ], 1.0)))) ]
  | k -> Alcotest.failf "no inputs for %s" k

let extra_kernel_test (spec : K.spec) () =
  let st = List.hd spec.K.stages in
  let inputs = extra_inputs spec.K.kname in
  let compiled = K.compile_stage spec st ~inputs in
  let expected =
    Ref.eval (P.parse_assign st.K.expr) ~inputs ~result_format:st.K.result_format
  in
  let sim, report = Sim.execute compiled in
  let cpu, _, _ = Imp.run compiled.C.plan ~inputs in
  checkb "sim agrees" true (T.max_abs_diff (List.assoc st.K.result sim) expected < 1e-6);
  checkb "cpu agrees" true (T.max_abs_diff (List.assoc st.K.result cpu) expected < 1e-6);
  let est = Sim.estimate compiled in
  checkb "estimate iterations" true
    (Float.abs (est.Sim.iterations -. report.Sim.iterations) < 0.5)

let extra_cases =
  List.map
    (fun (spec : K.spec) ->
      ("long-tail kernel: " ^ spec.K.kname, `Quick, extra_kernel_test spec))
    KX.all

(* ------------------------------------------------------------------ *)
(* Auto-scheduler                                                      *)
(* ------------------------------------------------------------------ *)

let test_autoschedule_spmv () =
  (* 6-line mode: formats + algorithm only (section 8.3) *)
  let inputs =
    [ ("A", D.small_random ~seed:31 ~name:"A" ~format:(F.csr ()) ~dims:[ 8; 9 ]
          ~density:0.3 ());
      ("x", D.dense_vector ~name:"x" ~dim:9 ()) ]
  in
  let formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ] in
  let compiled = Auto.compile ~formats ~inputs "y(i) = A(i,j) * x(j)" in
  let expected =
    Ref.eval (P.parse_assign "y(i) = A(i,j) * x(j)") ~inputs
      ~result_format:(F.dv ())
  in
  let sim, _ = Sim.execute compiled in
  checkb "auto-scheduled SpMV correct" true
    (T.max_abs_diff (List.assoc "y" sim) expected < 1e-6);
  (* the auto-scheduler found the Reduce acceleration *)
  let mapped =
    Stardust_ir.Cin.fold
      (fun acc n ->
        acc
        || match n with
           | Stardust_ir.Cin.Mapped { func = Stardust_ir.Cin.Reduction; _ } -> true
           | _ -> false)
      false
      (Stardust_schedule.Schedule.stmt compiled.C.schedule)
  in
  checkb "reduce accelerated" true mapped;
  (* gather kernel: shuffle-limited outer par of 16 *)
  Alcotest.(check int) "outerPar"
    16
    (Stardust_schedule.Schedule.env_value compiled.C.schedule "outerPar")

let test_autoschedule_residual () =
  let inputs =
    [ ("A", D.small_random ~seed:32 ~name:"A" ~format:(F.csr ()) ~dims:[ 8; 9 ]
          ~density:0.3 ());
      ("x", D.dense_vector ~name:"x" ~dim:9 ());
      ("b", D.dense_vector ~seed:33 ~name:"b" ~dim:8 ()) ]
  in
  let formats =
    [ ("y", F.dv ()); ("b", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]
  in
  let compiled = Auto.compile ~formats ~inputs "y(i) = b(i) - A(i,j) * x(j)" in
  let expected =
    Ref.eval (P.parse_assign "y(i) = b(i) - A(i,j) * x(j)") ~inputs
      ~result_format:(F.dv ())
  in
  let sim, _ = Sim.execute compiled in
  checkb "auto-scheduled Residual correct" true
    (T.max_abs_diff (List.assoc "y" sim) expected < 1e-6)

let test_autoschedule_ttm_order () =
  (* the dense output dimension is moved innermost automatically *)
  let formats =
    [ ("A", F.make [ F.Compressed; F.Compressed; F.Dense ]);
      ("B", F.csf 3); ("C", F.cm ()) ]
  in
  let a = P.parse_assign "A(i,j,k) = B(i,j,l) * C(k,l)" in
  let sched = Auto.schedule ~formats a in
  let nest = Stardust_ir.Cin.bound_vars (Stardust_schedule.Schedule.stmt sched) in
  checkb "k innermost" true (List.rev nest <> [] && List.hd (List.rev nest) = "k")

(* ------------------------------------------------------------------ *)
(* Tensor I/O                                                          *)
(* ------------------------------------------------------------------ *)

module Io = Stardust_tensor.Tensor_io

let test_io_mtx_roundtrip () =
  let t = D.small_random ~seed:41 ~name:"m" ~format:(F.csr ()) ~dims:[ 6; 7 ]
      ~density:0.4 () in
  let path = Filename.temp_file "stardust" ".mtx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Io.write_matrix_market t path;
  let t' = Io.read_matrix_market ~format:(F.csr ()) path in
  checkb "round trip" true (T.equal_approx t t')

let test_io_mtx_symmetric () =
  let path = Filename.temp_file "stardust" ".mtx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc
    "%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 2\n2 1 5.0\n3 3 7.0\n";
  close_out oc;
  let t = Io.read_matrix_market ~format:(F.csr ()) path in
  checkf "mirrored" 5.0 (T.get t [| 0; 1 |]);
  checkf "original" 5.0 (T.get t [| 1; 0 |]);
  checkf "diagonal once" 7.0 (T.get t [| 2; 2 |]);
  Alcotest.(check int) "nnz" 3 (T.nnz t)

let test_io_tns_roundtrip () =
  let t = D.small_random ~seed:42 ~name:"t" ~format:(F.csf 3) ~dims:[ 4; 5; 6 ]
      ~density:0.3 () in
  let path = Filename.temp_file "stardust" ".tns" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Io.write_tns t path;
  let t' = Io.read_tns ~dims:[ 4; 5; 6 ] ~format:(F.csf 3) path in
  checkb "round trip" true (T.equal_approx t t')

let test_io_errors () =
  let path = Filename.temp_file "stardust" ".mtx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc "not a matrix market file\n";
  close_out oc;
  match Io.read_matrix_market ~format:(F.csr ()) path with
  | exception Io.Io_error _ -> ()
  | _ -> Alcotest.fail "bad header accepted"

let suite =
  [
    ("exec: foreach copy", `Quick, test_exec_foreach_copy);
    ("exec: reduce accumulates", `Quick, test_exec_reduce_accumulates);
    ("exec: fifo order + underflow", `Quick, test_exec_fifo_order_and_underflow);
    ("exec: predicated reads", `Quick, test_exec_predicated_reads);
    ("exec: scan and/or", `Quick, test_exec_scan_and_or);
    ("exec: scan rank binds", `Quick, test_exec_scan_rank_binds);
    ("codegen: pretty printing", `Quick, test_codegen_pretty);
  ]
  @ extra_cases
  @ [
      ("autoschedule: SpMV (6-line mode)", `Quick, test_autoschedule_spmv);
      ("autoschedule: Residual", `Quick, test_autoschedule_residual);
      ("autoschedule: TTM dense-innermost", `Quick, test_autoschedule_ttm_order);
      ("io: matrix market round trip", `Quick, test_io_mtx_roundtrip);
      ("io: matrix market symmetric", `Quick, test_io_mtx_symmetric);
      ("io: frostt round trip", `Quick, test_io_tns_roundtrip);
      ("io: error handling", `Quick, test_io_errors);
    ]

(* ------------------------------------------------------------------ *)
(* Friendly unsupported-feature errors                                 *)
(* ------------------------------------------------------------------ *)

let test_split_not_supported_on_spatial () =
  (* split/fuse run on the CPU path and interpreter; the Spatial backend
     reports them clearly instead of failing obscurely *)
  let module S = Stardust_schedule.Schedule in
  let formats = [ ("y", F.dv ()); ("x", F.dv ()) ] in
  let sched = S.of_assign ~formats (P.parse_assign "y(i) = x(i)") in
  let sched = S.split_up sched "i" "i0" "i1" 4 in
  let inputs = [ ("x", D.dense_vector ~name:"x" ~dim:8 ()) ] in
  match C.compile sched ~inputs with
  | exception C.Compile_error msg ->
      checkb "actionable message" true (contains msg "split_up")
  | _ -> Alcotest.fail "derived-variable loop accepted by Spatial backend"

let prop_autoschedule_correct =
  QCheck.Test.make ~name:"auto-scheduled random kernels are correct" ~count:25
    QCheck.(pair (int_range 0 2) (int_range 0 1000))
    (fun (which, seed) ->
      let expr, formats, inputs, result, rfmt =
        match which with
        | 0 ->
            ( "y(i) = A(i,j) * x(j)",
              [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ],
              [ ("A", D.small_random ~seed ~name:"A" ~format:(F.csr ())
                   ~dims:[ 6; 7 ] ~density:0.4 ());
                ("x", D.dense_vector ~seed:(seed + 1) ~name:"x" ~dim:7 ()) ],
              "y", F.dv () )
        | 1 ->
            ( "A(i,j) = B(i,j) + C(i,j)",
              [ ("A", F.csr ()); ("B", F.csr ()); ("C", F.csr ()) ],
              [ ("B", D.small_random ~seed ~name:"B" ~format:(F.csr ())
                   ~dims:[ 5; 6 ] ~density:0.4 ());
                ("C", D.small_random ~seed:(seed + 2) ~name:"C"
                   ~format:(F.csr ()) ~dims:[ 5; 6 ] ~density:0.4 ()) ],
              "A", F.csr () )
        | _ ->
            ( "alpha = a(i) * b(i)",
              [ ("alpha", F.make []); ("a", F.sv ()); ("b", F.sv ()) ],
              [ ("a", D.small_random ~seed ~name:"a" ~format:(F.sv ())
                   ~dims:[ 12 ] ~density:0.5 ());
                ("b", D.small_random ~seed:(seed + 3) ~name:"b"
                   ~format:(F.sv ()) ~dims:[ 12 ] ~density:0.5 ()) ],
              "alpha", F.make [] )
      in
      let compiled = Auto.compile ~formats ~inputs expr in
      let expected = Ref.eval (P.parse_assign expr) ~inputs ~result_format:rfmt in
      let sim, _ = Sim.execute compiled in
      T.max_abs_diff (List.assoc result sim) expected < 1e-6)

let suite =
  suite
  @ [
      ("errors: split on Spatial path", `Quick, test_split_not_supported_on_spatial);
      QCheck_alcotest.to_alcotest prop_autoschedule_correct;
    ]
