(* Tests for the von Neumann substrate: the reference evaluator, the CIN
   interpreter, the imperative IR + interpreter, workload profiles, and the
   CPU/GPU timing models. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Ast = Stardust_ir.Ast
module P = Stardust_ir.Parser
module S = Stardust_schedule.Schedule
module Plan = Stardust_core.Plan
module K = Stardust_core.Kernels
module Ref = Stardust_vonneumann.Reference
module Interp = Stardust_vonneumann.Cin_interp
module Imp = Stardust_vonneumann.Imp_interp
module Iir = Stardust_vonneumann.Imperative_ir
module Profile = Stardust_vonneumann.Profile
module Cpu = Stardust_vonneumann.Cpu_model
module Gpu = Stardust_vonneumann.Gpu_model
module Pipeline = Stardust_core.Pipeline
module Sim = Stardust_capstan.Sim
module Dot = Stardust_spatial.Dotgraph
module D = Stardust_workloads.Datasets

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Reference evaluator                                                 *)
(* ------------------------------------------------------------------ *)

let test_reference_mixed_terms () =
  (* b is added once, not once per reduction iteration *)
  let a =
    T.of_entries ~name:"A" ~format:(F.csr ()) ~dims:[ 2; 3 ]
      [ ([ 0; 0 ], 1.0); ([ 0; 2 ], 2.0); ([ 1; 1 ], 3.0) ]
  in
  let x = T.of_entries ~name:"x" ~format:(F.dv ()) ~dims:[ 3 ]
      [ ([ 0 ], 1.0); ([ 1 ], 1.0); ([ 2 ], 1.0) ] in
  let b = T.of_entries ~name:"b" ~format:(F.dv ()) ~dims:[ 2 ]
      [ ([ 0 ], 10.0); ([ 1 ], 10.0) ] in
  let r =
    Ref.eval
      (P.parse_assign "y(i) = b(i) - A(i,j) * x(j)")
      ~inputs:[ ("A", a); ("x", x); ("b", b) ]
      ~result_format:(F.dv ())
  in
  checkf "row 0" 7.0 (T.get r [| 0 |]);
  checkf "row 1" 7.0 (T.get r [| 1 |])

let test_reference_scalar () =
  let a = T.of_entries ~name:"a" ~format:(F.sv ()) ~dims:[ 4 ]
      [ ([ 1 ], 2.0); ([ 3 ], 3.0) ] in
  let b = T.of_entries ~name:"b" ~format:(F.sv ()) ~dims:[ 4 ]
      [ ([ 1 ], 5.0); ([ 2 ], 7.0) ] in
  let r =
    Ref.eval (P.parse_assign "alpha = a(i) * b(i)")
      ~inputs:[ ("a", a); ("b", b) ] ~result_format:(F.make [])
  in
  checkf "dot" 10.0 (T.scalar_value r)

let test_reference_extent_conflict () =
  let a = D.dense_matrix ~name:"A" ~format:(F.rm ()) ~rows:3 ~cols:4 () in
  let x = D.dense_vector ~name:"x" ~dim:7 () in
  match
    Ref.eval (P.parse_assign "y(i) = A(i,j) * x(j)")
      ~inputs:[ ("A", a); ("x", x) ] ~result_format:(F.dv ())
  with
  | exception Ref.Eval_error _ -> ()
  | _ -> Alcotest.fail "conflicting extents accepted"

(* ------------------------------------------------------------------ *)
(* CIN interpreter                                                     *)
(* ------------------------------------------------------------------ *)

let test_cin_interp_where_scoping () =
  (* the workspace resets per consumer iteration *)
  let formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ] in
  let sched = S.of_assign ~formats (P.parse_assign "y(i) = A(i,j) * x(j)") in
  let e = Ast.(access "A" [ "i"; "j" ] * access "x" [ "j" ]) in
  let sched = S.precompute sched e [] [] ("ws", F.make ~region:F.On_chip []) in
  let a = T.of_entries ~name:"A" ~format:(F.csr ()) ~dims:[ 2; 2 ]
      [ ([ 0; 0 ], 1.0); ([ 1; 1 ], 1.0) ] in
  let x = T.of_entries ~name:"x" ~format:(F.dv ()) ~dims:[ 2 ]
      [ ([ 0 ], 3.0); ([ 1 ], 4.0) ] in
  let r = Interp.run sched ~inputs:[ ("A", a); ("x", x) ] ~result:"y"
      ~result_format:(F.dv ()) in
  (* without per-iteration reset row 1 would also contain row 0's sum *)
  checkf "row0" 3.0 (T.get r [| 0 |]);
  checkf "row1" 4.0 (T.get r [| 1 |])

let test_cin_interp_split_guard () =
  (* a constant-factor split overshoots the extent; overshoot iterations
     must be guarded out *)
  let formats = [ ("y", F.dv ()); ("x", F.dv ()) ] in
  let sched = S.of_assign ~formats (P.parse_assign "y(i) = x(i)") in
  let sched = S.split_up sched "i" "i0" "i1" 4 in
  let x = D.dense_vector ~name:"x" ~dim:7 () in
  let r = Interp.run sched ~inputs:[ ("x", x) ] ~result:"y"
      ~result_format:(F.dv ()) in
  checkb "copy exact despite overshoot" true (T.equal_approx r x)

(* ------------------------------------------------------------------ *)
(* Imperative path                                                     *)
(* ------------------------------------------------------------------ *)

let spmv_plan () =
  let spec = K.spmv in
  let st = List.hd spec.K.stages in
  let inputs =
    [ ("A", D.small_random ~seed:61 ~name:"A" ~format:(F.csr ()) ~dims:[ 6; 7 ]
          ~density:0.4 ());
      ("x", D.dense_vector ~name:"x" ~dim:7 ()) ]
  in
  (Plan.build (K.schedule_stage spec st) ~inputs, inputs)

let test_imp_tallies () =
  let plan, inputs = spmv_plan () in
  let _, tally, _ = Imp.run plan ~inputs in
  let a = List.assoc "A" inputs in
  (* the j loop executes once per nonzero; plus the outer i loop *)
  checkb "iters >= nnz" true
    (tally.Imp.iters >= float_of_int (T.nnz a));
  checkb "flops counted" true (tally.Imp.flops > 0.0);
  checkb "loads counted" true (tally.Imp.loads > 0.0);
  checkb "stores counted" true (tally.Imp.stores > 0.0)

let test_imp_c_output_zero_init () =
  (* dense outputs carry an explicit zero-init loop (the GPU pathology) *)
  let plan, inputs = spmv_plan () in
  let _, _, func = Imp.run plan ~inputs in
  let code = Iir.to_string func in
  checkb "zero-init loop" true (contains code "zero-initialise");
  checkb "omp parallel (SpMV qualifies)" true (contains code "#pragma omp")

let test_imp_ir_printer () =
  let open Iir in
  let f =
    { fname = "t"; arrays = [ { aname = "x"; length = 4; is_output = true } ];
      scalars = [ ("N", 4) ];
      body =
        [ Decl { var = "acc"; init = Const 0.0; is_int = false };
          For { var = "i"; lo = int 0; hi = var "N";
                body =
                  [ If { cond = Cmp (Lt, var "i", int 2);
                         then_ = [ Assign ("acc", Var "acc" +: idx "x" (var "i")) ];
                         else_ = [ Incr "acc" ] } ];
                parallel = false };
          While { cond = Cmp (Ne, var "acc", Const 0.0);
                  body = [ Assign ("acc", Const 0.0) ] } ] }
  in
  let code = to_string f in
  checkb "for loop" true (contains code "for (int32_t i = 0; i < N; i++)");
  checkb "while" true (contains code "while ((acc != 0))");
  checkb "define" true (contains code "#define N 4")

(* ------------------------------------------------------------------ *)
(* Profiles and timing models                                          *)
(* ------------------------------------------------------------------ *)

let test_profile_spmv () =
  let plan, inputs = spmv_plan () in
  let p = Profile.of_plan plan ~inputs in
  let a = List.assoc "A" inputs in
  checkf "pos iters = nnz" (float_of_int (T.nnz a)) p.Profile.pos_iters;
  checkf "no merges" 0.0 (Profile.merge_iters p);
  checkb "x gathered" true (Profile.total_gathers p > 0.0);
  checkb "gather granularity 1 word" true
    (List.for_all (fun g -> g.Profile.words_each = 1) p.Profile.gathers)

let test_profile_union_counts () =
  let spec = K.plus2 in
  let st = List.hd spec.K.stages in
  let b = D.small_random ~seed:62 ~name:"B" ~format:(F.ucc ()) ~dims:[ 3; 4; 5 ]
      ~density:0.4 () in
  let c = D.rotate_even_last ~name:"C" b in
  let inputs = [ ("B", b); ("C", c) ] in
  let plan = Plan.build (K.schedule_stage spec st) ~inputs in
  let p = Profile.of_plan plan ~inputs in
  checkb "union merges counted" true (p.Profile.merge_or_iters > 0.0);
  checkf "no intersections" 0.0 p.Profile.merge_and_iters;
  checkb "sparse output appends" true (p.Profile.output_appends > 0.0)

let test_cpu_model_monotone () =
  let plan, inputs = spmv_plan () in
  let p = Profile.of_plan plan ~inputs in
  let base = (Cpu.run p).Cpu.seconds in
  let serial = (Cpu.run { p with Profile.parallel_outer = false }).Cpu.seconds in
  checkb "serial slower" true (serial >= base);
  let more_work =
    (Cpu.run { p with Profile.pos_iters = p.Profile.pos_iters *. 10.0 }).Cpu.seconds
  in
  checkb "more iterations, more time" true (more_work > base)

let test_gpu_model_init_dominates () =
  let plan, inputs = spmv_plan () in
  let p = Profile.of_plan plan ~inputs in
  let small = (Gpu.run p).Gpu.seconds in
  let huge_output =
    (Gpu.run { p with Profile.output_dense_words = 1e9 }).Gpu.seconds
  in
  checkb "dense-output init dominates" true (huge_output > 100.0 *. small);
  let r = Gpu.run { p with Profile.output_dense_words = 1e9 } in
  checkb "init component" true (r.Gpu.init_seconds > r.Gpu.compute_seconds)

let test_gpu_scatter_only_sparse_outputs () =
  let plan, inputs = spmv_plan () in
  let p = Profile.of_plan plan ~inputs in
  (* y is fully dense: no scatter charge *)
  checkf "no scatter" 0.0 (Gpu.run p).Gpu.scatter_seconds

(* ------------------------------------------------------------------ *)
(* Pipeline orchestration and DOT export                               *)
(* ------------------------------------------------------------------ *)

let test_pipeline_plus3 () =
  let inputs = List.assoc "Plus3" Test_backend_data.small_inputs in
  let p =
    Pipeline.run K.plus3 ~inputs ~execute:(fun c -> fst (Sim.execute c))
  in
  Alcotest.(check int) "two stages" 2 (List.length p.Pipeline.stages);
  let expected =
    let add = P.parse_assign "A(i,j) = B(i,j) + C(i,j) + D(i,j)" in
    Ref.eval add ~inputs ~result_format:(F.csr ())
  in
  checkb "pipeline result = three-way sum" true
    (T.max_abs_diff (Pipeline.final p) expected < 1e-6);
  checkb "total metric sums stages" true
    (Pipeline.total p (fun _ -> 1.0) = 2.0)

let test_dot_export () =
  let inputs = List.assoc "SpMV" Test_backend_data.small_inputs in
  let st = List.hd K.spmv.K.stages in
  let compiled = K.compile_stage K.spmv st ~inputs in
  let dot = Dot.of_program compiled.Stardust_core.Compile.program in
  checkb "digraph" true (contains dot "digraph");
  checkb "dram node" true (contains dot "A2_pos_dram");
  checkb "reduce pattern" true (contains dot "Reduce");
  checkb "edges" true (contains dot "->")

let suite =
  [
    ("reference: mixed terms", `Quick, test_reference_mixed_terms);
    ("reference: scalar results", `Quick, test_reference_scalar);
    ("reference: extent conflicts", `Quick, test_reference_extent_conflict);
    ("cin-interp: workspace scoping", `Quick, test_cin_interp_where_scoping);
    ("cin-interp: split guard", `Quick, test_cin_interp_split_guard);
    ("imperative: tallies", `Quick, test_imp_tallies);
    ("imperative: zero-init + omp", `Quick, test_imp_c_output_zero_init);
    ("imperative: C printer", `Quick, test_imp_ir_printer);
    ("profile: SpMV counts", `Quick, test_profile_spmv);
    ("profile: union counts", `Quick, test_profile_union_counts);
    ("cpu model: monotone", `Quick, test_cpu_model_monotone);
    ("gpu model: init dominates", `Quick, test_gpu_model_init_dominates);
    ("gpu model: scatter only sparse", `Quick, test_gpu_scatter_only_sparse_outputs);
    ("pipeline: Plus3 orchestration", `Quick, test_pipeline_plus3);
    ("dot export", `Quick, test_dot_export);
  ]
