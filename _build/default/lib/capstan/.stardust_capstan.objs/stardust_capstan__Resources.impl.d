lib/capstan/resources.pp.ml: Arch Fmt List Option Stardust_core Stardust_schedule Stardust_spatial Stardust_tensor
