lib/capstan/sim.pp.ml: Arch Array Dram Float Fmt Hashtbl List Option Printf Queue Stardust_core Stardust_spatial Stardust_tensor String Sys
