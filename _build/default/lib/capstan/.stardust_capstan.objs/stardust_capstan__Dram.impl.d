lib/capstan/dram.pp.ml: Ppx_deriving_runtime
