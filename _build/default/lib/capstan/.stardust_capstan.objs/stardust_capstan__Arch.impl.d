lib/capstan/arch.pp.ml:
