(** Off-chip memory models.

    The original evaluation drives Ramulator with either four channels of
    DDR4-2133 or HBM-2E at 1800 GB/s, plus an "ideal" memory that ignores
    latency and bandwidth.  We reproduce the same three configurations as
    bandwidth/latency envelopes: total runtime takes the maximum of compute
    time and [bytes / bandwidth] (the streaming roofline), and random
    (non-burst) accesses are charged a full DRAM transaction line each. *)

type kind = Ddr4 | Hbm2e | Ideal_mem [@@deriving show { with_path = false }, eq]

type t = {
  kind : kind;
  bandwidth_bytes_per_s : float;
  latency_cycles : float;  (** first-word latency of one burst *)
  line_bytes : int;  (** minimum transaction granularity *)
  random_penalty : float;
      (** de-rating of effective bandwidth for non-streaming access *)
}

(** Four channels of DDR4-2133: 4 x 17.06 GB/s. *)
let ddr4 =
  {
    kind = Ddr4;
    bandwidth_bytes_per_s = 4.0 *. 17.06e9;
    latency_cycles = 96.0;
    line_bytes = 64;
    random_penalty = 4.0;
  }

(** HBM-2E at the paper's 1800 GB/s. *)
let hbm2e =
  {
    kind = Hbm2e;
    bandwidth_bytes_per_s = 1800.0e9;
    latency_cycles = 64.0;
    line_bytes = 32;
    random_penalty = 2.0;
  }

(** Ideal memory: no bandwidth or latency constraints. *)
let ideal =
  {
    kind = Ideal_mem;
    bandwidth_bytes_per_s = infinity;
    latency_cycles = 0.0;
    line_bytes = 4;
    random_penalty = 1.0;
  }

let of_kind = function Ddr4 -> ddr4 | Hbm2e -> hbm2e | Ideal_mem -> ideal

(** Bytes transferable per accelerator cycle. *)
let bytes_per_cycle d ~clock_hz = d.bandwidth_bytes_per_s /. clock_hz

(** Cycles to move [streamed] burst bytes plus [random] individual accesses
    (each touching a full line at de-rated bandwidth). *)
let transfer_cycles d ~clock_hz ~streamed_bytes ~random_accesses =
  if d.kind = Ideal_mem then 0.0
  else
    let bpc = bytes_per_cycle d ~clock_hz in
    let stream = streamed_bytes /. bpc in
    let rand =
      random_accesses *. float_of_int d.line_bytes *. d.random_penalty /. bpc
    in
    stream +. rand

(** A scaled variant for bandwidth-sweep experiments (Figure 12). *)
let with_bandwidth d bytes_per_s = { d with bandwidth_bytes_per_s = bytes_per_s }
