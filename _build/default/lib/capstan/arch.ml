(** Capstan architecture description (paper section 8.2, Figure 3).

    Capstan is a grid of 200 vectorized pattern compute units (PCUs) and 200
    pattern memory units (PMUs) ringed by 80 memory controllers (MCs); 16
    shuffle networks provide cross-lane sparse access.  Each PCU has six
    pipeline stages and 16 vector lanes; each PMU has 16 banks of 4096
    32-bit words. *)

type t = {
  num_pcu : int;
  num_pmu : int;
  num_mc : int;
  num_shuffle : int;
  lanes : int;  (** vector lanes per PCU *)
  sparse_lanes : int;
      (** lanes usable by {e sparse} iteration patterns.  Capstan's sparse
          scanners vectorize compressed iteration across all 16 lanes; on
          Plasticine (its non-sparse ancestor) compressed iteration is
          scalar, which is the architectural gap the paper's Table 6
          Plasticine row exposes. *)
  pcu_stages : int;  (** pipeline stages per PCU *)
  pmu_banks : int;
  pmu_words_per_bank : int;
  clock_hz : float;
  (* Network model (Zhang et al. [ISCA'19]): a throughput de-rating applied
     to compute pipelines plus per-pattern-launch issue overhead, both
     removed in the "ideal network" configuration. *)
  net_overhead : float;  (** multiplier >= 1.0 on pipeline occupancy *)
  launch_ii : float;
      (** initiation bubble between successive launches of an inner
          pattern (outer metapipelining hides the full pipeline depth) *)
  latency_exposure : float;
      (** fraction of DRAM first-word latency a burst exposes despite the
          decoupled access-execute prefetching (0 with ideal memory) *)
  bv_words_per_cycle : float;
      (** packed bit-vector words streamed to the scanner per cycle: the
          real network serializes the stream to one 32-bit word per cycle,
          the ideal network delivers a full vector per cycle *)
}

let default =
  {
    num_pcu = 200;
    num_pmu = 200;
    num_mc = 80;
    num_shuffle = 16;
    lanes = 16;
    sparse_lanes = 16;
    pcu_stages = 6;
    pmu_banks = 16;
    pmu_words_per_bank = 4096;
    clock_hz = 1.6e9;
    net_overhead = 1.25;
    launch_ii = 1.0;
    latency_exposure = 0.01;
    bv_words_per_cycle = 1.0;
  }

let ideal_network a =
  { a with net_overhead = 1.0; launch_ii = 0.5; bv_words_per_cycle = 16.0 }

(** Plasticine (Prabhakar et al. [ISCA'17]): the same fabric without
    Capstan's sparse extensions — compressed iteration runs scalar. *)
let plasticine = { default with sparse_lanes = 1 }

(** Words one PMU holds. *)
let pmu_words a = a.pmu_banks * a.pmu_words_per_bank

(** PMUs needed to hold [words] 32-bit words (at least one per memory). *)
let pmus_for a words = max 1 ((words + pmu_words a - 1) / pmu_words a)

let seconds_of_cycles a c = c /. a.clock_hz
