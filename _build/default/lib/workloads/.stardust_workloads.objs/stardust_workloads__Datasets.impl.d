lib/workloads/datasets.ml: Array Float List Prng Stardust_tensor
