(** Deterministic pseudo-random number generator (splitmix64).

    Every dataset in the benchmark suite is generated from a fixed seed so
    runs are reproducible bit-for-bit; we do not use [Random] to keep the
    generators independent of OCaml's global state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 t) Int64.max_int)
                  (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let float t =
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int x /. 9007199254740992.0 (* 2^53 *)

(** Uniform float in [lo, hi). *)
let range t lo hi = lo +. ((hi -. lo) *. float t)

(** Bernoulli draw. *)
let bool t p = float t < p
