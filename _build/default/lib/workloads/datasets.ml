(** Dataset generators reproducing Table 4.

    The paper evaluates on three SuiteSparse matrices (bcsstk30,
    ckt11752_dc_1, Trefethen_20000), uniform random matrices/tensors at
    controlled densities, and the facebook activity tensor.  None of those
    files ship with this repository, so each is replaced by a deterministic
    synthetic generator matching its published dimensions, nonzero count,
    and structure class:

    - {!bcsstk30_like}: a banded FEM-style stiffness matrix (clustered
      near-diagonal entries, symmetric pattern);
    - {!ckt11752_like}: circuit-simulation structure — a guaranteed
      diagonal plus a few scattered entries per row with hub columns;
    - {!trefethen_like}: the actual Trefethen construction (diagonal plus
      entries at power-of-two offsets), which needs no source data;
    - {!facebook_like}: a power-law third-order activity tensor (most
      activity in few temporal slices, hub users);
    - {!random_matrix} / {!random_tensor3}: i.i.d. uniform sparsity at the
      exact densities of Table 4.

    Only dimensions, densities, and structure enter the performance models,
    so these generators preserve the evaluation's behaviour. *)

module Tensor = Stardust_tensor.Tensor
module Coo = Stardust_tensor.Coo
module Format = Stardust_tensor.Format

let value rng = Prng.range rng 0.25 1.75

(* -------------------------------------------------------------------- *)
(* Generic random generators                                             *)
(* -------------------------------------------------------------------- *)

(** Uniform random sparse matrix of approximately [density * rows * cols]
    nonzeros (duplicate draws collapse). *)
let random_matrix ?(seed = 7) ~name ~format ~rows ~cols ~density () =
  let rng = Prng.create seed in
  let coo = Coo.create [| rows; cols |] in
  let target = int_of_float (density *. float_of_int rows *. float_of_int cols) in
  (* Per-row draw keeps generation O(nnz) and the distribution uniform. *)
  let per_row = float_of_int target /. float_of_int rows in
  for i = 0 to rows - 1 do
    let n =
      int_of_float per_row + (if Prng.bool rng (Float.rem per_row 1.0) then 1 else 0)
    in
    for _ = 1 to n do
      Coo.add coo [| i; Prng.int rng cols |] (value rng)
    done
  done;
  Tensor.of_coo ~name ~format coo

(** Uniform random order-3 tensor at the given density. *)
let random_tensor3 ?(seed = 11) ~name ~format ~dims ~density () =
  let rng = Prng.create seed in
  let d0, d1, d2 =
    match dims with [ a; b; c ] -> (a, b, c) | _ -> invalid_arg "dims"
  in
  let coo = Coo.create [| d0; d1; d2 |] in
  let total = density *. float_of_int d0 *. float_of_int d1 *. float_of_int d2 in
  let per_slice = total /. float_of_int d0 in
  for i = 0 to d0 - 1 do
    let n =
      int_of_float per_slice
      + (if Prng.bool rng (Float.rem per_slice 1.0) then 1 else 0)
    in
    for _ = 1 to n do
      Coo.add coo [| i; Prng.int rng d1; Prng.int rng d2 |] (value rng)
    done
  done;
  Tensor.of_coo ~name ~format coo

(** Dense matrix with uniform values (built directly in storage order —
    dense operands at paper scale reach millions of elements). *)
let dense_matrix ?(seed = 13) ~name ~format ~rows ~cols () =
  if not (Format.is_fully_dense format) then
    invalid_arg "Datasets.dense_matrix: format is not dense";
  let rng = Prng.create seed in
  (* Values indexed in logical row-major order, then permuted into storage
     order so the same seed gives the same logical matrix under rm or cm. *)
  let logical = Array.init (rows * cols) (fun _ -> value rng) in
  let dims = [ rows; cols ] in
  let vals =
    match format.Format.mode_order with
    | [ 0; 1 ] -> logical
    | [ 1; 0 ] ->
        Array.init (rows * cols) (fun k ->
            let j = k / rows and i = k mod rows in
            logical.((i * cols) + j))
    | _ -> invalid_arg "Datasets.dense_matrix: unsupported mode order"
  in
  let levels =
    Array.of_list
      (List.map
         (fun d -> Tensor.Dense_level { dim = List.nth dims d })
         format.Format.mode_order)
  in
  Tensor.of_arrays ~name ~format ~dims ~levels ~vals

(** Dense vector with uniform values. *)
let dense_vector ?(seed = 17) ~name ~dim () =
  let rng = Prng.create seed in
  Tensor.of_arrays ~name ~format:(Format.dv ()) ~dims:[ dim ]
    ~levels:[| Tensor.Dense_level { dim } |]
    ~vals:(Array.init dim (fun _ -> value rng))

(* -------------------------------------------------------------------- *)
(* SuiteSparse-like matrices (Table 4's named datasets)                  *)
(* -------------------------------------------------------------------- *)

(** Banded FEM stiffness structure: 28924 x 28924, density 2.48e-3
    (~72 nnz/row) clustered within a +-600 band around the diagonal. *)
let bcsstk30_like ?(dim = 28924) ?(seed = 19) ~format () =
  let rng = Prng.create seed in
  let coo = Coo.create [| dim; dim |] in
  let per_row = int_of_float (2.48e-3 *. float_of_int dim) in
  let band = 600 in
  for i = 0 to dim - 1 do
    Coo.add coo [| i; i |] (value rng);
    for _ = 2 to per_row do
      let off = Prng.int rng (2 * band) - band in
      let j = max 0 (min (dim - 1) (i + off)) in
      Coo.add coo [| i; j |] (value rng)
    done
  done;
  Tensor.of_coo ~name:"bcsstk30" ~format coo

(** Circuit structure: 49702 x 49702, density 1.35e-4 (~6.7 nnz/row) — a
    diagonal, a few scattered couplings, and a small set of hub columns
    (supply rails) shared by many rows. *)
let ckt11752_like ?(dim = 49702) ?(seed = 23) ~format () =
  let rng = Prng.create seed in
  let coo = Coo.create [| dim; dim |] in
  let hubs = Array.init 24 (fun _ -> Prng.int rng dim) in
  for i = 0 to dim - 1 do
    Coo.add coo [| i; i |] (value rng);
    (* local couplings *)
    for _ = 1 to 4 do
      let j = max 0 (min (dim - 1) (i + Prng.int rng 200 - 100)) in
      Coo.add coo [| i; j |] (value rng)
    done;
    (* occasional hub connection *)
    if Prng.bool rng 0.7 then
      Coo.add coo [| i; hubs.(Prng.int rng (Array.length hubs)) |] (value rng)
  done;
  Tensor.of_coo ~name:"ckt11752_dc_1" ~format coo

(** The Trefethen_20000 construction itself: A(i,i) on the diagonal and
    A(i, i +- 2^k) off it — 20000 x 20000, density 1.39e-3. *)
let trefethen_like ?(dim = 20000) ?(seed = 29) ~format () =
  let rng = Prng.create seed in
  let coo = Coo.create [| dim; dim |] in
  for i = 0 to dim - 1 do
    Coo.add coo [| i; i |] (value rng);
    let k = ref 1 in
    while !k < dim do
      if i - !k >= 0 then Coo.add coo [| i; i - !k |] (value rng);
      if i + !k < dim then Coo.add coo [| i; i + !k |] (value rng);
      k := !k * 2
    done
  done;
  Tensor.of_coo ~name:"Trefethen_20000" ~format coo

(** Power-law activity tensor like the facebook dataset: 1591 temporal
    slices over a 63891 x 63890 user grid, density 1.14e-7 (~740 K nnz),
    with activity concentrated in few slices and hub users. *)
let facebook_like ?(dims = (1591, 63891, 63890)) ?(density = 1.14e-7)
    ?(seed = 31) ~format () =
  let d0, d1, d2 = dims in
  let rng = Prng.create seed in
  let coo = Coo.create [| d0; d1; d2 |] in
  let total =
    int_of_float (density *. float_of_int d0 *. float_of_int d1 *. float_of_int d2)
  in
  (* Zipf-ish slice popularity: slice s receives weight 1/(s+1)^0.7. *)
  let weights = Array.init d0 (fun s -> 1.0 /. Float.pow (float_of_int (s + 1)) 0.7) in
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let hub rng d = if Prng.bool rng 0.2 then Prng.int rng (d / 100 + 1) else Prng.int rng d in
  Array.iteri
    (fun s w ->
      let n = int_of_float (float_of_int total *. w /. wsum) in
      for _ = 1 to n do
        Coo.add coo [| s; hub rng d1; hub rng d2 |] (value rng)
      done)
    weights;
  Tensor.of_coo ~name:"facebook" ~format coo

(* -------------------------------------------------------------------- *)
(* Derived datasets (section 8.1's rotations)                            *)
(* -------------------------------------------------------------------- *)

(** Rotate a matrix's columns right by [by] (Plus3's extra operands). *)
let rotate_cols ~by ~name x =
  let dims = Tensor.dims x in
  let cols = dims.(1) in
  let coo = Coo.create dims in
  Tensor.iter_nonzeros
    (fun c v -> Coo.add coo [| c.(0); (c.(1) + by) mod cols |] v)
    x;
  Tensor.of_coo ~name ~format:(Tensor.format x) coo

(** Rotate the even coordinates of the last dimension by two (Plus2 and
    InnerProd's second operands). *)
let rotate_even_last ~name x =
  let dims = Tensor.dims x in
  let n = Array.length dims in
  let last = dims.(n - 1) in
  let coo = Coo.create dims in
  Tensor.iter_nonzeros
    (fun c v ->
      let c = Array.copy c in
      if c.(n - 1) mod 2 = 0 then c.(n - 1) <- (c.(n - 1) + 2) mod last;
      Coo.add coo c v)
    x;
  Tensor.of_coo ~name ~format:(Tensor.format x) coo

(* -------------------------------------------------------------------- *)
(* Small validation datasets (used by the test-suite)                    *)
(* -------------------------------------------------------------------- *)

(** A small random sparse tensor of arbitrary order for unit tests. *)
let small_random ?(seed = 37) ~name ~format ~dims ~density () =
  let rng = Prng.create seed in
  let coo = Coo.create (Array.of_list dims) in
  let rec gen coords = function
    | [] ->
        if Prng.bool rng density then
          Coo.add coo (Array.of_list (List.rev coords)) (value rng)
    | d :: rest ->
        for c = 0 to d - 1 do
          gen (c :: coords) rest
        done
  in
  gen [] dims;
  Tensor.of_coo ~name ~format coo
