lib/spatial/spatial_ir.pp.ml: Fmt List Option Ppx_deriving_runtime
