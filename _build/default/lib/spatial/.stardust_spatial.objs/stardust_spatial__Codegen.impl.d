lib/spatial/codegen.pp.ml: Float Fmt List Option Spatial_ir String
