lib/spatial/dotgraph.pp.ml: Buffer Hashtbl List Option Printf Spatial_ir String
