(** The Spatial parallel-pattern IR targeted by Stardust (Koeplinger et al.
    [PLDI'18]), restricted to the constructs Capstan supports (paper
    Figures 9 and 11).

    A {!program} declares off-chip DRAM arrays and an [Accel] block.  Inside
    the block, statements allocate on-chip memories (SRAM / FIFO / register /
    bit-vector), move data in bulk between DRAM and on-chip memories, and
    iterate with parallel patterns: dense [Foreach]/[Reduce] counters,
    compressed position iteration, and bit-vector [Scan]s for
    compressed-compressed co-iteration (the declarative-sparse model).

    Every loop carries a {!trip} annotation recording which tensor level (or
    co-iteration) it traverses; the Capstan simulator uses these to derive
    exact iteration counts from dataset statistics without executing every
    scalar operation. *)

(** Physical memory classes of section 6.1. *)
type mem_kind =
  | Dram_dense  (** host-initialised off-chip array, bulk streamed *)
  | Dram_sparse  (** off-chip array with direct random access *)
  | Sram_dense  (** on-chip scratchpad, affine access (PMU) *)
  | Sram_sparse  (** on-chip scratchpad, random access with reuse (PMU) *)
  | Fifo of int  (** streaming buffer of the given depth (PMU) *)
  | Reg  (** scalar register *)
  | Bit_vector  (** packed coordinate bit-vector stream *)
[@@deriving show { with_path = false }, eq, ord]

type binop = Add | Sub | Mul | Div | Min | Max
[@@deriving show { with_path = false }, eq, ord]

type exp =
  | Int of int
  | Flt of float
  | Var of string  (** loop index or [Let]-bound value *)
  | Read of string * exp list
      (** memory read: [Read (m, [])] for a register, [Read (m, [i])] for
          SRAM/DRAM-sparse indexing *)
  | Bin of binop * exp * exp
  | Neg of exp
  | Mux of exp * exp * exp
      (** [Mux (p, a, b)] is [a] when [p >= 0] and [b] otherwise — the
          predication primitive union scans use for absent operands *)
[@@deriving show { with_path = false }, eq, ord]

(** Iteration-count provenance for the cost estimator.  A loop's total trip
    count over the whole program is the product of its parents' counts and
    its own per-execution count; [Fiber] and [Coiter] are averages that make
    the product exact in total. *)
type trip =
  | Trip_const of int
  | Trip_dim of { tensor : string; dim : int }
      (** the size of a logical tensor dimension *)
  | Trip_fiber of { tensor : string; level : int }
      (** average fiber length of a compressed level *)
  | Trip_coiter of { union : bool; tensors : (string * int) list }
      (** average per-parent intersection/union cardinality *)
  | Trip_exp
      (** derive from the [len] expression when it is a compile-time
          constant; otherwise unknown *)
[@@deriving show { with_path = false }, eq, ord]

type alloc = {
  mem : string;
  kind : mem_kind;
  size : exp;  (** capacity in words (bits for [Bit_vector]) *)
}
[@@deriving show { with_path = false }, eq, ord]

(** Bit-vector scan specification (Figure 9, lines 7-11): iterate over the
    set bits of one bit-vector or of the AND/OR of two. *)
type scan_op = Scan_single | Scan_and | Scan_or
[@@deriving show { with_path = false }, eq, ord]

type scan = {
  op : scan_op;
  bvs : string list;  (** one or two bit-vector memories *)
  scan_par : int;
  scan_len : exp;  (** dense length of the scanned coordinate space *)
  (* Bindings available in the body: *)
  bind_pos : string list;  (** per input, its running nonzero ordinal *)
  bind_out : string option;  (** ordinal within the combined result *)
  bind_coord : string;  (** the dense coordinate of the set bit *)
}
[@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Alloc of alloc
  | Let of string * exp  (** [val x = e]; evaluated once per iteration *)
  | Deq of string * string  (** [val x = fifo.deq] *)
  | Load_burst of {
      dst : string;  (** on-chip memory *)
      src : string;  (** DRAM array *)
      lo : exp;
      hi : exp;
      par : int;
    }  (** [dst load src(lo::hi par p)] *)
  | Store_burst of { dst : string; src : string; lo : exp; len : exp; par : int }
      (** [dst stream_store / store src], [len] elements at offset [lo] *)
  | Foreach of {
      len : exp;
      par : int;
      bind : string;
      body : stmt list;
      trip : trip;
    }
  | Foreach_scan of { scan : scan; body : stmt list; trip : trip }
  | Reduce of {
      target : string;  (** accumulation register *)
      init : exp;
      len : exp;
      par : int;
      bind : string;
      body : stmt list;  (** setup of [expr] (e.g. FIFO deqs) *)
      expr : exp;  (** the mapped value; combined with [+] *)
      trip : trip;
    }
  | Reduce_scan of {
      target : string;
      init : exp;
      scan : scan;
      body : stmt list;
      expr : exp;
      trip : trip;
    }
  | Write of {
      mem : string;
      idx : exp option;  (** [None] for registers *)
      value : exp;
      accum : bool;  (** read-modify-write add (atomic on sparse SRAM) *)
    }
  | Enq of string * exp  (** FIFO enqueue *)
  | Gen_bitvector of {
      bv : string;  (** destination bit-vector *)
      crd_mem : string;  (** memory holding coordinates (FIFO or SRAM) *)
      count : exp;  (** number of coordinates to scan in *)
      trip : trip;
    }
  | Comment of string
[@@deriving show { with_path = false }, eq, ord]

type program = {
  name : string;
  env : (string * int) list;  (** environment variables (innerPar, ...) *)
  host_params : (string * string) list;
      (** symbolic size parameters bound by the host (e.g. [nnz_max]) *)
  dram : alloc list;
  accel : stmt list;
}
[@@deriving show { with_path = false }, eq]

(* -------------------------------------------------------------------- *)
(* Expression helpers                                                    *)
(* -------------------------------------------------------------------- *)

let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let int n = Int n
let var v = Var v
let reg_read r = Read (r, [])
let sram_read m i = Read (m, [ i ])

let rec exp_vars = function
  | Int _ | Flt _ -> []
  | Var v -> [ v ]
  | Read (m, idx) -> m :: List.concat_map exp_vars idx
  | Bin (_, a, b) -> exp_vars a @ exp_vars b
  | Neg e -> exp_vars e
  | Mux (p, a, b) -> exp_vars p @ exp_vars a @ exp_vars b

(** Fold over every statement in a program body, depth-first. *)
let rec fold_stmts f acc body =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s with
      | Foreach { body; _ } | Foreach_scan { body; _ } -> fold_stmts f acc body
      | Reduce { body; _ } | Reduce_scan { body; _ } -> fold_stmts f acc body
      | Alloc _ | Let _ | Deq _ | Load_burst _ | Store_burst _ | Write _
      | Enq _ | Gen_bitvector _ | Comment _ -> acc)
    acc body

(** All on-chip allocations (including nested ones). *)
let allocs p =
  List.rev
    (fold_stmts
       (fun acc s -> match s with Alloc a -> a :: acc | _ -> acc)
       [] p.accel)

let find_alloc p name =
  List.find_opt (fun a -> a.mem = name) (allocs p @ p.dram)

(* -------------------------------------------------------------------- *)
(* Validation                                                            *)
(* -------------------------------------------------------------------- *)

(** Structural checks: every memory referenced is declared (DRAM or
    on-chip, in scope before use), loop binders don't shadow memories, and
    scans name declared bit-vectors.  Returns human-readable problems. *)
let validate (p : program) =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let dram_names = List.map (fun a -> a.mem) p.dram in
  let check_mem scope m =
    if not (List.mem m scope) then err "memory %s used before declaration" m
  in
  let rec check_exp scope vars e =
    match e with
    | Int _ | Flt _ -> ()
    | Var v ->
        if not (List.mem v vars) then err "variable %s unbound" v
    | Read (m, idx) ->
        check_mem scope m;
        List.iter (check_exp scope vars) idx
    | Bin (_, a, b) -> check_exp scope vars a; check_exp scope vars b
    | Neg e -> check_exp scope vars e
    | Mux (p, a, b) ->
        check_exp scope vars p; check_exp scope vars a; check_exp scope vars b
  in
  let check_scan scope vars (s : scan) =
    List.iter (check_mem scope) s.bvs;
    check_exp scope vars s.scan_len;
    (match (s.op, s.bvs) with
    | Scan_single, [ _ ] | (Scan_and | Scan_or), [ _; _ ] -> ()
    | _ -> err "scan arity mismatch (%d bit-vectors)" (List.length s.bvs));
    s.bind_pos @ Option.to_list s.bind_out @ [ s.bind_coord ]
  in
  let rec go scope vars body =
    List.fold_left
      (fun (scope, vars) s ->
        match s with
        | Alloc a ->
            if List.mem a.mem scope then err "memory %s redeclared" a.mem;
            check_exp scope vars a.size;
            (a.mem :: scope, vars)
        | Let (x, e) -> check_exp scope vars e; (scope, x :: vars)
        | Deq (x, f) -> check_mem scope f; (scope, x :: vars)
        | Load_burst { dst; src; lo; hi; _ } ->
            check_mem scope dst; check_mem scope src;
            check_exp scope vars lo; check_exp scope vars hi;
            (scope, vars)
        | Store_burst { dst; src; lo; len; _ } ->
            check_mem scope dst; check_mem scope src;
            check_exp scope vars lo; check_exp scope vars len;
            (scope, vars)
        | Foreach { len; bind; body; _ } ->
            check_exp scope vars len;
            ignore (go scope (bind :: vars) body);
            (scope, vars)
        | Foreach_scan { scan; body; _ } ->
            let binds = check_scan scope vars scan in
            ignore (go scope (binds @ vars) body);
            (scope, vars)
        | Reduce { target; init; len; bind; body; expr; _ } ->
            check_mem scope target;
            check_exp scope vars init;
            check_exp scope vars len;
            let scope', vars' = go scope (bind :: vars) body in
            check_exp scope' vars' expr;
            (scope, vars)
        | Reduce_scan { target; init; scan; body; expr; _ } ->
            check_mem scope target;
            check_exp scope vars init;
            let binds = check_scan scope vars scan in
            let scope', vars' = go scope (binds @ vars) body in
            check_exp scope' vars' expr;
            (scope, vars)
        | Write { mem; idx; value; _ } ->
            check_mem scope mem;
            Option.iter (check_exp scope vars) idx;
            check_exp scope vars value;
            (scope, vars)
        | Enq (f, e) -> check_mem scope f; check_exp scope vars e; (scope, vars)
        | Gen_bitvector { bv; crd_mem; count; _ } ->
            check_mem scope bv; check_mem scope crd_mem;
            check_exp scope vars count;
            (scope, vars)
        | Comment _ -> (scope, vars))
      (scope, vars) body
  in
  ignore (go dram_names (List.map fst p.host_params @ List.map fst p.env) p.accel);
  List.rev !errs

let is_valid p = validate p = []
