(** Dataflow-graph export (Graphviz DOT).

    Renders a Spatial program as the spatial configuration the paper's
    Figure 4b draws: memories (grey boxes — DRAM, scratchpads, FIFOs,
    registers, bit-vectors) and compute patterns (yellow boxes — Foreach /
    Reduce / Scan), with edges for the data streams between them.  Useful
    for inspecting how a kernel was mapped:

    {[ Out_channel.with_open_text "spmv.dot" (fun oc ->
         output_string oc (Dotgraph.of_program compiled.program)) ]} *)

open Spatial_ir

let esc s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let mem_style = function
  | Dram_dense -> "fillcolor=\"#d9d9d9\", shape=box3d"
  | Dram_sparse -> "fillcolor=\"#bdbdbd\", shape=box3d"
  | Sram_dense -> "fillcolor=\"#e8e8e8\", shape=box"
  | Sram_sparse -> "fillcolor=\"#dddddd\", shape=box"
  | Fifo _ -> "fillcolor=\"#e8f0fe\", shape=cds"
  | Reg -> "fillcolor=\"#f3e8fe\", shape=circle"
  | Bit_vector -> "fillcolor=\"#e8fee8\", shape=note"

let mem_label name = function
  | Dram_dense -> name ^ "\\n(DRAM)"
  | Dram_sparse -> name ^ "\\n(sparse DRAM)"
  | Sram_dense -> name ^ "\\n(SRAM)"
  | Sram_sparse -> name ^ "\\n(sparse SRAM)"
  | Fifo d -> Printf.sprintf "%s\\n(FIFO %d)" name d
  | Reg -> name
  | Bit_vector -> name ^ "\\n(bit-vector)"

(** Memories an expression reads. *)
let rec exp_mems = function
  | Int _ | Flt _ | Var _ -> []
  | Read (m, idx) -> m :: List.concat_map exp_mems idx
  | Bin (_, a, b) -> exp_mems a @ exp_mems b
  | Neg e -> exp_mems e
  | Mux (p, a, b) -> exp_mems p @ exp_mems a @ exp_mems b

let of_program (p : program) =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %S {\n" p.name;
  pr "  rankdir=LR;\n  node [style=filled, fontname=\"Helvetica\"];\n";
  let fresh =
    let n = ref 0 in
    fun () -> incr n; Printf.sprintf "pat%d" !n
  in
  let kinds = Hashtbl.create 32 in
  List.iter (fun (a : alloc) -> Hashtbl.replace kinds a.mem a.kind) p.dram;
  let declare_mem (a : alloc) =
    Hashtbl.replace kinds a.mem a.kind;
    pr "  %S [label=\"%s\", %s];\n" a.mem (mem_label (esc a.mem) a.kind)
      (mem_style a.kind)
  in
  List.iter declare_mem p.dram;
  let edge a b = pr "  %S -> %S;\n" a b in
  (* one pattern node per compute pattern; edges from read memories and to
     written memories *)
  let rec go parent body =
    List.iter
      (fun s ->
        match s with
        | Alloc a -> declare_mem a
        | Load_burst { dst; src; _ } -> edge src dst
        | Store_burst { dst; src; _ } -> edge src dst
        | Foreach { par; body; bind; _ } ->
            let n = fresh () in
            pr "  %S [label=\"Foreach %s\\npar %d\", fillcolor=\"#fff2cc\", shape=component];\n"
              n (esc bind) par;
            Option.iter (fun pn -> edge pn n) parent;
            go (Some n) body
        | Reduce { target; par; body; expr; bind; _ } ->
            let n = fresh () in
            pr "  %S [label=\"Reduce %s\\npar %d\", fillcolor=\"#ffe599\", shape=component];\n"
              n (esc bind) par;
            Option.iter (fun pn -> edge pn n) parent;
            List.iter (fun m -> edge m n) (exp_mems expr);
            edge n target;
            go (Some n) body
        | Foreach_scan { scan; body; _ } ->
            let n = fresh () in
            pr "  %S [label=\"Scan (%s)\\npar %d\", fillcolor=\"#fce5cd\", shape=component];\n"
              n
              (match scan.op with
              | Scan_single -> "single" | Scan_and -> "and" | Scan_or -> "or")
              scan.scan_par;
            List.iter (fun bv -> edge bv n) scan.bvs;
            Option.iter (fun pn -> edge pn n) parent;
            go (Some n) body
        | Reduce_scan { target; scan; body; expr; _ } ->
            let n = fresh () in
            pr "  %S [label=\"Reduce+Scan (%s)\\npar %d\", fillcolor=\"#f9cb9c\", shape=component];\n"
              n
              (match scan.op with
              | Scan_single -> "single" | Scan_and -> "and" | Scan_or -> "or")
              scan.scan_par;
            List.iter (fun bv -> edge bv n) scan.bvs;
            List.iter (fun m -> edge m n) (exp_mems expr);
            edge n target;
            Option.iter (fun pn -> edge pn n) parent;
            go (Some n) body
        | Write { mem; value; idx; _ } ->
            Option.iter
              (fun pn ->
                List.iter (fun m -> edge m pn)
                  (exp_mems value @ Option.fold ~none:[] ~some:exp_mems idx);
                edge pn mem)
              parent
        | Enq (f, e) ->
            Option.iter
              (fun pn ->
                List.iter (fun m -> edge m pn) (exp_mems e);
                edge pn f)
              parent
        | Gen_bitvector { bv; crd_mem; _ } -> edge crd_mem bv
        | Deq (_, f) -> Option.iter (fun pn -> edge f pn) parent
        | Let (_, e) ->
            Option.iter
              (fun pn -> List.iter (fun m -> edge m pn) (exp_mems e))
              parent
        | Comment _ -> ())
      body
  in
  go None p.accel;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
