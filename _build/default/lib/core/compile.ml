(** The Stardust compiler driver — the public entry point.

    [compile] takes the three Stardust inputs — a tensor-algebra expression
    (already scheduled: a {!Stardust_schedule.Schedule.t}) and the concrete
    input tensors — and produces a {!Stardust_spatial.Spatial_ir.program}
    together with the compilation plan that sized it.  Convenience helpers
    parse expressions from strings and build default schedules. *)

module Tensor = Stardust_tensor.Tensor
module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule

type compiled = {
  name : string;
  schedule : Schedule.t;
  plan : Plan.t;
  program : Stardust_spatial.Spatial_ir.program;
  inputs : (string * Tensor.t) list;
}

exception Compile_error of string

(** [compile ~name sched ~inputs] runs planning (co-iteration analysis and
    memory binding) and lowering.  The compiled program is validated
    structurally before being returned.

    @raise Compile_error when planning, lowering, or validation fails. *)
let compile ?(name = "kernel") ?sram_budget (sched : Schedule.t)
    ~(inputs : (string * Tensor.t) list) : compiled =
  let fail fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt in
  match
    let plan = Plan.build ?sram_budget sched ~inputs in
    let program = Lower.lower ~name plan in
    (plan, program)
  with
  | exception Plan.Plan_error m -> fail "planning %s: %s" name m
  | exception Coiter.Lower_error m -> fail "lowering %s: %s" name m
  | exception Schedule.Schedule_error m -> fail "scheduling %s: %s" name m
  | plan, program ->
      (match Stardust_spatial.Spatial_ir.validate program with
      | [] -> ()
      | errs ->
          fail "%s: generated Spatial program is invalid:@ %a" name
            Fmt.(list ~sep:(any ";@ ") string)
            errs);
      { name; schedule = sched; plan; program; inputs }

(** Parse an index-notation string and build its canonical schedule.
    [formats] must cover every tensor named in the expression. *)
let schedule_of_string ~formats s =
  match Parser.parse_assign s with
  | a -> Schedule.of_assign ~formats a
  | exception Parser.Parse_error (m, off) ->
      raise (Compile_error (Printf.sprintf "parse error at %d: %s" off m))

(** One-call convenience: parse, schedule canonically, and compile. *)
let compile_string ?name ?sram_budget ~formats ~inputs s =
  compile ?name ?sram_budget (schedule_of_string ~formats s) ~inputs

(** The generated Spatial source text. *)
let spatial_code c = Stardust_spatial.Codegen.to_string c.program

(** Generated lines of code (Table 3's "Spatial" column). *)
let spatial_loc c = Stardust_spatial.Codegen.lines_of_code c.program

(** Input lines of code (Table 3's "Input" column): format declarations +
    algorithm + scheduling commands + one output statement, matching the
    paper's accounting in section 8.3. *)
let input_loc c =
  let formats =
    List.length c.schedule.Stardust_schedule.Schedule.formats
    - List.length c.schedule.Stardust_schedule.Schedule.temporaries
  in
  let commands = List.length (Schedule.trace c.schedule) in
  (* trace includes the algorithm line; +1 for compile/output *)
  formats + commands + 1
