lib/core/lower.pp.ml: Array Coiter Fmt Fun List Memory Option Plan Printf Stardust_ir Stardust_schedule Stardust_spatial Stardust_tensor
