lib/core/memory.pp.ml: List Ppx_deriving_runtime Printf Stardust_spatial Stardust_tensor
