lib/core/pipeline.pp.ml: Compile Kernels List Printf Stardust_tensor String
