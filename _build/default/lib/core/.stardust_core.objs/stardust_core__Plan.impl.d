lib/core/plan.pp.ml: Array Coiter Fmt Hashtbl List Memory Stardust_ir Stardust_schedule Stardust_tensor
