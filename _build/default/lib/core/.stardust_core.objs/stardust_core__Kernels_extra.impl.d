lib/core/kernels_extra.pp.ml: Fun Kernels List Stardust_ir Stardust_schedule Stardust_tensor String
