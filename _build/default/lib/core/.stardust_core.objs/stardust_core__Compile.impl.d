lib/core/compile.pp.ml: Coiter Fmt List Lower Plan Printf Stardust_ir Stardust_schedule Stardust_spatial Stardust_tensor
