lib/core/coiter.pp.ml: Fmt List Ppx_deriving_runtime Stardust_ir Stardust_tensor String
