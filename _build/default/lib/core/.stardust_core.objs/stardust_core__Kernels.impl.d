lib/core/kernels.pp.ml: Compile Fun List Stardust_ir Stardust_schedule Stardust_tensor String
