(** A first-cut auto-scheduler.

    The paper argues (sections 1 and 8.3) that the clean separation of
    algorithm, format, and schedule enables auto-scheduling, and estimates
    that an auto-scheduler would cut SpMV's input from 10 lines to 6 by
    deriving the schedule.  This module implements the deterministic part
    of that derivation — the recipes a performance engineer applies
    mechanically:

    - every reduction whose result is scalar-per-output-point gets a
      scalar-workspace [precompute] and an accelerated [Reduce] over its
      innermost reduction loop (the Figure 5 recipe);
    - mixed additive expressions already receive their workspace from
      {!Stardust_schedule.Schedule.of_assign}; the reduction part is then
      accelerated the same way;
    - dense dimensions are moved innermost ([reorder]) so they vectorize
      affinely instead of forcing gathers (the TTM/MTTKRP recipe);
    - parallelization factors are chosen from the co-iteration structure:
      full vector width inside, and an outer factor that respects the
      16-port shuffle limit when the kernel gathers.

    [schedule] is a heuristic, not a search: combined with
    {!Stardust_capstan.Sim.estimate} it is the starting point a
    design-space explorer (see [examples/design_space.ml]) refines. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule

let on_scalar = Format.make ~region:Format.On_chip []

(** Reduction variables ordered so that dense (vectorizable) dimensions
    come last: a variable is dense if {e every} tensor accessing it stores
    the corresponding dimension in a dense level. *)
let dense_last ~formats (a : Ast.assign) vars =
  let is_dense v =
    List.for_all
      (fun (acc : Ast.access) ->
        match List.find_index (String.equal v) acc.indices with
        | None -> true
        | Some d -> (
            match List.assoc_opt acc.tensor formats with
            | None -> true
            | Some fmt ->
                Format.level_kind fmt (Format.level_of_dim fmt d) = Format.Dense))
      (a.Ast.lhs :: Ast.accesses_of_expr a.Ast.rhs)
  in
  let sparse, dense = List.partition (fun v -> not (is_dense v)) vars in
  (sparse @ dense, dense <> [])

(** A loop order is usable only if every tensor's storage levels bind
    outside-in: the variable of level [l] must come before the variable of
    level [l+1] (compressed fibers are reachable only through their
    parents). *)
let respects_levels ~formats (a : Ast.assign) order =
  let pos v = List.find_index (String.equal v) order in
  List.for_all
    (fun (acc : Ast.access) ->
      match List.assoc_opt acc.tensor formats with
      | None -> true
      | Some fmt ->
          let n = Format.order fmt in
          let var_of_level l =
            List.nth acc.indices (Format.dim_of_level fmt l)
          in
          List.for_all
            (fun l ->
              match (pos (var_of_level l), pos (var_of_level (l + 1))) with
              | Some p1, Some p2 -> p1 < p2
              | _ -> true)
            (if n < 2 then [] else List.init (n - 1) Fun.id))
    (a.Ast.lhs :: Ast.accesses_of_expr a.Ast.rhs)

(** Does any access gather a dense tensor at sparse coordinates?  (Then
    outer parallelization is capped by the shuffle network.) *)
let uses_gather ~formats (a : Ast.assign) =
  let var_sparse v =
    List.exists
      (fun (acc : Ast.access) ->
        match List.find_index (String.equal v) acc.indices with
        | None -> false
        | Some d -> (
            match List.assoc_opt acc.tensor formats with
            | None -> false
            | Some fmt ->
                Format.level_kind fmt (Format.level_of_dim fmt d)
                = Format.Compressed))
      (Ast.accesses_of_expr a.Ast.rhs)
  in
  List.exists
    (fun (acc : Ast.access) ->
      match List.assoc_opt acc.tensor formats with
      | None -> false
      | Some fmt ->
          Format.is_fully_dense fmt
          && List.exists var_sparse acc.indices)
    (Ast.accesses_of_expr a.Ast.rhs)

(** Derive a complete schedule for an index-notation assignment: loop
    order, parallelization factors, workspace insertion, and Reduce
    acceleration.  This is the 6-line input mode of section 8.3 — the user
    supplies only formats and the algorithm. *)
let schedule ?(inner_par = 16) ?outer_par ~formats (a : Ast.assign) =
  let sched = Schedule.of_assign ~formats a in
  let rvars = Ast.reduction_vars a in
  (* 1. dense-innermost loop order *)
  let out_vars = a.Ast.lhs.Ast.indices in
  let all = Cin.bound_vars (Schedule.stmt sched) in
  let reordered, moved = dense_last ~formats a (out_vars @ rvars) in
  let sched =
    (* only reorder plain nests (auto-workspace kernels keep their shape),
       and only when the new order keeps every tensor's levels outside-in *)
    if
      moved
      && all = out_vars @ rvars
      && reordered <> all
      && respects_levels ~formats a reordered
    then Schedule.reorder sched reordered
    else sched
  in
  (* 2. parallelization: shuffle-limited when the kernel gathers *)
  let op =
    match outer_par with
    | Some p -> p
    | None -> if uses_gather ~formats a then 16 else 8
  in
  let sched = Schedule.set_environment sched "innerPar" inner_par in
  let sched = Schedule.set_environment sched "outerPar" op in
  (* 3. accelerate the reduction as a Reduce pattern *)
  if rvars = [] then sched
  else if Schedule.has_tensor sched "_rs" then begin
    (* mixed additive expression: of_assign already made the workspace *)
    let red =
      List.filter
        (fun (_, t) ->
          List.exists (fun v -> List.mem v rvars) (Ast.indices_of_expr t))
        (Ast.linear_terms a.Ast.rhs)
    in
    let target =
      Cin.forall (List.hd (List.rev rvars))
        (Cin.Assign
           { lhs = { tensor = "_rs"; indices = [] }; accum = true;
             rhs = Ast.of_linear_terms red })
    in
    try
      Schedule.accelerate sched target Cin.Spatial Cin.Reduction
        (Some (Cin.Cvar "innerPar"))
    with Schedule.Schedule_error _ -> sched
  end
  else begin
    (* plain contraction: workspace + accelerate the innermost loop *)
    let nest = Cin.bound_vars (Schedule.stmt sched) in
    let innermost_rvar =
      List.fold_left (fun acc v -> if List.mem v rvars then Some v else acc)
        None nest
    in
    match innermost_rvar with
    | None -> sched
    | Some v -> (
        (* Dense-result accumulations (e.g. TTM's k-innermost row) do not
           need a scalar workspace; only reduce when v is truly innermost
           after reordering. *)
        match List.rev nest with
        | last :: _ when last = v -> (
            let sched' =
              Schedule.precompute sched a.Ast.rhs [] [] ("ws", on_scalar)
            in
            let target =
              Cin.forall v
                (Cin.Assign
                   { lhs = { tensor = "ws"; indices = [] }; accum = true;
                     rhs = a.Ast.rhs })
            in
            try
              Schedule.accelerate sched' target Cin.Spatial Cin.Reduction
                (Some (Cin.Cvar "innerPar"))
            with Schedule.Schedule_error _ -> sched)
        | _ -> sched)
  end

(** Auto-schedule and compile in one step. *)
let compile ?name ?inner_par ?outer_par ~formats ~inputs expr =
  let a = Stardust_ir.Parser.parse_assign expr in
  let sched = schedule ?inner_par ?outer_par ~formats a in
  Compile.compile ?name sched ~inputs
