(** Fine-grained array memory inference (paper section 6).

    The format language pins a whole tensor coarsely (on-chip / off-chip);
    this analysis binds each of its {e sub-arrays} — positions and
    coordinates per compressed level, plus the values array — to a physical
    Spatial memory kind, decides the loop level at which to allocate it, and
    the transfer that fills (or drains) it.

    The rules implemented are those of section 6.1/6.2:

    - off-chip tensor sub-arrays always also exist as dense DRAMs
      (host-initialised); random-access fallbacks use sparse DRAMs;
    - position arrays have affine access ([p], [p+1]) and bind to dense
      SRAM, allocated one loop above their level's loop (or at kernel
      start) and loaded whole;
    - coordinate arrays stream in fiber order and bind to FIFOs, loaded one
      fiber at a time in the parent loop body — except when the level
      participates in a bit-vector scan, where the fiber is staged in
      sparse SRAM (scan lanes revisit positions out of order);
    - value arrays bind by access pattern: in-order single-use streams bind
      to FIFOs; dense slices accessed affinely bind to dense SRAM; gathers
      (indexed by a coordinate produced by sparse iteration) bind to sparse
      SRAM when the array fits on chip and to sparse DRAM otherwise;
    - on-chip scalars bind to registers. *)

module Format = Stardust_tensor.Format
open Stardust_spatial.Spatial_ir

type sub_array = Pos of int | Crd of int | Vals
[@@deriving show { with_path = false }, eq, ord]

(** Where an on-chip allocation is placed: before the loop header of the
    named variable's loop (i.e. in the enclosing body), or at the start of
    the kernel. *)
type site = Kernel_start | Above_loop of string
[@@deriving show { with_path = false }, eq, ord]

type transfer =
  | Whole_array  (** one burst of the entire array *)
  | Per_fiber  (** a burst of the current fiber in the parent loop body *)
  | Direct  (** no staging: random accesses go straight to DRAM *)
  | No_transfer  (** produced and consumed on-chip *)
[@@deriving show { with_path = false }, eq, ord]

type binding = {
  array : sub_array;
  kind : mem_kind;
  site : site;
  transfer : transfer;
  uses_shuffle : bool;
      (** the access gathers/scatters across vector lanes through the
          shuffle network (section 8.2) *)
}
[@@deriving show { with_path = false }, eq, ord]

(** How the loop over a given variable iterates, as decided by the
    co-iteration rewrite system; this drives the values-array binding. *)
type loop_style =
  | Affine_loop  (** dense counter: coordinates are affine *)
  | Stream_loop  (** single compressed iterator: positions advance in order *)
  | Scan_loop  (** bit-vector scan: positions are revisited per lane *)
[@@deriving show { with_path = false }, eq, ord]

(** Per-tensor access context assembled by the lowerer. *)
type access_ctx = {
  fmt : Format.t;
  is_result : bool;
  (* Per storage level of this tensor: *)
  level_var : int -> string option;  (** loop variable bound to the level *)
  level_style : int -> loop_style;  (** how that variable's loop iterates *)
  leads_level : int -> bool;
      (** this tensor is the iterator driving that loop (vs. being accessed
          at coordinates produced by another tensor's iteration) *)
  var_loop_above : string -> site;  (** site just above a variable's loop *)
  total_words : int;  (** whole values array size, for the SRAM budget *)
  sram_budget : int;  (** words one gatherable on-chip array may occupy *)
}

let innermost_level (c : access_ctx) = Format.order c.fmt - 1

(** Binding of compressed level [l]'s position array. *)
let bind_pos (c : access_ctx) l =
  (* Accessed one loop higher than the level's loop; allocated one loop
     above that access point.  Result position arrays persist across the
     whole kernel (they are assembled incrementally and stored at the
     end), so they always live at kernel scope. *)
  let site =
    if l = 0 || c.is_result then Kernel_start
    else
      match c.level_var (l - 1) with
      | Some v -> c.var_loop_above v
      | None -> Kernel_start
  in
  {
    array = Pos l;
    kind = Sram_dense;
    site;
    transfer =
      (if c.is_result then No_transfer
       else if site = Kernel_start then Whole_array
       else Per_fiber (* one slice covering the parent fiber per iteration *));
    uses_shuffle = false;
  }

(** Binding of compressed level [l]'s coordinate array. *)
let bind_crd (c : access_ctx) l =
  let site =
    match c.level_var l with
    | Some v -> c.var_loop_above v
    | None -> Kernel_start
  in
  let style =
    match c.level_var l with Some _ -> c.level_style l | None -> Stream_loop
  in
  if c.is_result then
    { array = Crd l; kind = Fifo 16; site; transfer = No_transfer;
      uses_shuffle = false }
  else
    match style with
    | Scan_loop ->
        (* Coordinates feed a bit-vector generator; the fiber streams once
           through a FIFO into the generator. *)
        { array = Crd l; kind = Fifo 16; site; transfer = Per_fiber;
          uses_shuffle = false }
    | Affine_loop | Stream_loop ->
        { array = Crd l; kind = Fifo 16; site; transfer = Per_fiber;
          uses_shuffle = false }

(** Binding of the values array. *)
let bind_vals (c : access_ctx) =
  let n = Format.order c.fmt in
  if n = 0 then
    (* On-chip scalar: a register. *)
    { array = Vals; kind = Reg; site = Kernel_start; transfer = No_transfer;
      uses_shuffle = false }
  else begin
    let last = innermost_level c in
    let site =
      match c.level_var last with
      | Some v -> c.var_loop_above v
      | None -> Kernel_start
    in
    if c.is_result then
      match Format.level_kind c.fmt last with
      | Format.Compressed ->
          (* Sparse output values stream out through a FIFO. *)
          { array = Vals; kind = Fifo 16; site; transfer = Per_fiber;
            uses_shuffle = false }
      | Format.Dense ->
          if Format.is_fully_dense c.fmt then
            (* Whole dense result accumulated on-chip, stored once. *)
            { array = Vals; kind = Sram_dense; site = Kernel_start;
              transfer = Whole_array; uses_shuffle = false }
          else
            (* Sparse-then-dense result (e.g. TTM): one dense row per
               parent position, stored per fiber. *)
            { array = Vals; kind = Sram_dense; site; transfer = Per_fiber;
              uses_shuffle = false }
    else begin
      let leads = c.leads_level last in
      let style =
        match c.level_var last with
        | Some _ -> c.level_style last
        | None -> Affine_loop
      in
      match (Format.level_kind c.fmt last, leads, style) with
      | Format.Compressed, true, (Stream_loop | Affine_loop) ->
          (* In-order single pass over the fiber's values. *)
          { array = Vals; kind = Fifo 16; site; transfer = Per_fiber;
            uses_shuffle = false }
      | Format.Compressed, true, Scan_loop ->
          (* Scan lanes read values by position ordinal within the staged
             fiber: sparse SRAM, bank-aligned (no shuffle). *)
          { array = Vals; kind = Sram_sparse; site; transfer = Per_fiber;
            uses_shuffle = false }
      | Format.Dense, _, Affine_loop ->
          (* Affine slice: dense SRAM loaded per parent iteration. *)
          { array = Vals; kind = Sram_dense; site; transfer = Per_fiber;
            uses_shuffle = false }
      | Format.Dense, _, (Stream_loop | Scan_loop) ->
          (* Gather at sparse coordinates.  On-chip if it fits, else direct
             random access to sparse DRAM.  Either way the vectorized
             gather crosses lanes: it needs the shuffle network. *)
          if c.total_words <= c.sram_budget then
            { array = Vals; kind = Sram_sparse; site = Kernel_start;
              transfer = Whole_array; uses_shuffle = true }
          else
            { array = Vals; kind = Dram_sparse; site = Kernel_start;
              transfer = Direct; uses_shuffle = true }
      | Format.Compressed, false, _ ->
          (* Accessed (not led) compressed values: random within fiber. *)
          { array = Vals; kind = Sram_sparse; site; transfer = Per_fiber;
            uses_shuffle = true }
    end
  end

(** All sub-array bindings of one tensor access. *)
let analyze (c : access_ctx) =
  let n = Format.order c.fmt in
  let level_bindings =
    List.concat
      (List.init n (fun l ->
           match Format.level_kind c.fmt l with
           | Format.Dense -> []
           | Format.Compressed -> [ bind_pos c l; bind_crd c l ]))
  in
  level_bindings @ [ bind_vals c ]

let find_binding bindings array =
  List.find_opt (fun b -> equal_sub_array b.array array) bindings

(** DRAM array names for a tensor's sub-arrays (TACO naming: levels are
    1-based in array names, e.g. [B2_pos] for level index 1). *)
let dram_name tensor = function
  | Pos l -> Printf.sprintf "%s%d_pos_dram" tensor (l + 1)
  | Crd l -> Printf.sprintf "%s%d_crd_dram" tensor (l + 1)
  | Vals -> Printf.sprintf "%s_vals_dram" tensor

(** On-chip memory names. *)
let onchip_name tensor = function
  | Pos l -> Printf.sprintf "%s%d_pos" tensor (l + 1)
  | Crd l -> Printf.sprintf "%s%d_crd" tensor (l + 1)
  | Vals -> Printf.sprintf "%s_vals" tensor
