(** Host orchestration of multi-stage kernels.

    A Stardust program may span several accelerator invocations — Plus3 is
    mapped as two two-input additions (section 8.1), and applications chain
    kernels (each PageRank step is an SpMV; each ALS sweep is several
    MTTKRPs).  This module runs a kernel's stages in order, materialising
    each stage's result (the host round-trip the paper's off-chip formats
    denote) and accumulating the per-stage reports. *)

module Tensor = Stardust_tensor.Tensor

type stage_result = {
  stage_expr : string;
  compiled : Compile.compiled;
  outputs : (string * Tensor.t) list;
}

type t = {
  stages : stage_result list;
  results : (string * Tensor.t) list;  (** final tensor pool *)
}

exception Pipeline_error of string

(** [run spec ~inputs ~execute] compiles and executes every stage of
    [spec], feeding each stage's outputs into later stages' inputs.
    [execute] maps a compiled stage to its result tensors — pass
    [Stardust_capstan.Sim] execution from the application (this library
    does not depend on the simulator), e.g.:

    {[
      Pipeline.run spec ~inputs ~execute:(fun c -> fst (Sim.execute c))
    ]} *)
let run (spec : Kernels.spec) ~(inputs : (string * Tensor.t) list)
    ~(execute : Compile.compiled -> (string * Tensor.t) list) : t =
  let pool = ref inputs in
  let stages =
    List.map
      (fun (st : Kernels.stage) ->
        let stage_inputs =
          List.filter_map
            (fun (n, _) ->
              if n = st.Kernels.result then None
              else
                match List.assoc_opt n !pool with
                | Some t -> Some (n, Tensor.rename n t)
                | None ->
                    if String.length n > 0 && n.[0] = '_' then None
                    else
                      raise
                        (Pipeline_error
                           (Printf.sprintf "stage %s: missing input %s"
                              st.Kernels.expr n)))
            st.Kernels.formats
        in
        let compiled = Kernels.compile_stage spec st ~inputs:stage_inputs in
        let outputs = execute compiled in
        List.iter (fun (n, t) -> pool := (n, t) :: List.remove_assoc n !pool) outputs;
        { stage_expr = st.Kernels.expr; compiled; outputs })
      spec.Kernels.stages
  in
  { stages; results = !pool }

(** The final result tensor of the last stage. *)
let final t =
  match List.rev t.stages with
  | [] -> raise (Pipeline_error "empty pipeline")
  | last :: _ -> (
      match last.outputs with
      | (_, r) :: _ -> r
      | [] -> raise (Pipeline_error "last stage produced no output"))

(** Sum a per-stage metric (e.g. simulated seconds) over the pipeline. *)
let total t f = List.fold_left (fun acc s -> acc +. f s.compiled) 0.0 t.stages
