(** The long tail: kernels beyond the paper's evaluation suite.

    The paper's motivation is that sparse tensor algebra has a long tail of
    expressions nobody builds fixed-function hardware for, and that a
    compiler covers them all.  This module backs that claim: additional
    kernels — none evaluated in the paper — that compile, validate, and
    simulate through exactly the same pipeline.  They are exercised by the
    test suite's four-way agreement harness and by the ablation benches. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
open Kernels

(** Sparse-matrix times dense-matrix (SpMM): the workhorse of graph neural
    networks.  Dense output accumulated row-by-row; the dense column
    dimension vectorizes innermost. *)
let spmm =
  {
    kname = "SpMM";
    paper_expr = "A_ik = sum_j B_ij C_jk";
    inner_par = 16;
    outer_par = 8;
    stages =
      [
        {
          expr = "A(i,k) = B(i,j) * C(j,k)";
          formats = [ ("A", Format.rm ()); ("B", Format.csr ()); ("C", Format.rm ()) ];
          result = "A";
          result_format = Format.rm ();
          schedule = (fun s -> Schedule.reorder s [ "i"; "j"; "k" ]);
          baseline_reorder = Some [ "i"; "j"; "k" ];
        };
      ];
  }

(** Sparse vector addition (compressed union of two sparse vectors). *)
let sv_add =
  {
    kname = "SvAdd";
    paper_expr = "y_i = a_i + b_i (sparse vectors)";
    inner_par = 16;
    outer_par = 1;
    stages =
      [
        {
          expr = "y(i) = a(i) + b(i)";
          formats = [ ("y", Format.sv ()); ("a", Format.sv ()); ("b", Format.sv ()) ];
          result = "y";
          result_format = Format.sv ();
          schedule = Fun.id;
          baseline_reorder = None;
        };
      ];
  }

(** Scaled sparse vector update, y = 0.5 a + b (axpy-like). *)
let sv_axpy =
  {
    kname = "SvAxpy";
    paper_expr = "y_i = alpha a_i + b_i (sparse vectors)";
    inner_par = 16;
    outer_par = 1;
    stages =
      [
        {
          expr = "y(i) = 0.5 * a(i) + b(i)";
          formats = [ ("y", Format.sv ()); ("a", Format.sv ()); ("b", Format.sv ()) ];
          result = "y";
          result_format = Format.sv ();
          schedule = Fun.id;
          baseline_reorder = None;
        };
      ];
  }

(** Sparse dot product: an intersection scan feeding a reduction. *)
let sv_dot =
  let expr = "alpha = a(i) * b(i)" in
  {
    kname = "SvDot";
    paper_expr = "alpha = sum_i a_i b_i (sparse vectors)";
    inner_par = 16;
    outer_par = 1;
    stages =
      [
        {
          expr;
          formats =
            [ ("alpha", Format.make []); ("a", Format.sv ()); ("b", Format.sv ()) ];
          result = "alpha";
          result_format = Format.make [];
          schedule = reduce_schedule ~expr_str:expr ~red_vars:[ "i" ];
          baseline_reorder = None;
        };
      ];
  }

(** Element-wise (Hadamard) product of two sparse matrices — the masking
    primitive of GraphBLAS. *)
let hadamard =
  {
    kname = "Hadamard";
    paper_expr = "A_ij = B_ij .* C_ij";
    inner_par = 16;
    outer_par = 8;
    stages =
      [
        {
          expr = "A(i,j) = B(i,j) * C(i,j)";
          formats =
            [ ("A", Format.csr ()); ("B", Format.csr ()); ("C", Format.csr ()) ];
          result = "A";
          result_format = Format.csr ();
          schedule = Fun.id;
          baseline_reorder = None;
        };
      ];
  }

(** Sparse matrix addition (the Plus3 stage as a kernel of its own). *)
let sp_add =
  {
    kname = "SpAdd";
    paper_expr = "A_ij = B_ij + C_ij";
    inner_par = 16;
    outer_par = 8;
    stages =
      [
        {
          expr = "A(i,j) = B(i,j) + C(i,j)";
          formats =
            [ ("A", Format.csr ()); ("B", Format.csr ()); ("C", Format.csr ()) ];
          result = "A";
          result_format = Format.csr ();
          schedule = Fun.id;
          baseline_reorder = None;
        };
      ];
  }

(** Row sums of a sparse matrix (out-degree / normalisation vectors). *)
let row_sums =
  let expr = "y(i) = A(i,j) * o(j)" in
  {
    kname = "RowSums";
    paper_expr = "y_i = sum_j A_ij";
    inner_par = 16;
    outer_par = 16;
    stages =
      [
        {
          expr;
          formats = [ ("y", Format.dv ()); ("A", Format.csr ()); ("o", Format.dv ()) ];
          result = "y";
          result_format = Format.dv ();
          schedule = reduce_schedule ~expr_str:expr ~red_vars:[ "j" ];
          baseline_reorder = None;
        };
      ];
  }

(** All extra kernels, in the shape of {!Kernels.all}. *)
let all = [ spmm; sv_add; sv_axpy; sv_dot; hadamard; sp_add; row_sums ]

let find name =
  List.find_opt
    (fun k -> String.lowercase_ascii k.kname = String.lowercase_ascii name)
    all
