(** Tensor statistics used by the analytic cost models.

    The Capstan simulator and the CPU/GPU baselines estimate loop trip counts
    from dataset statistics instead of executing every scalar operation (the
    paper's datasets reach billions of iterations).  This module computes the
    exact counts those estimates need: per-level position counts, fiber
    lengths, and co-iteration (intersection/union) cardinalities. *)

type t = {
  dims : int array;
  nnz : int;  (** structurally stored nonzeros *)
  num_vals : int;  (** leaf positions incl. trailing-dense zeros *)
  level_positions : int array;  (** iteration-space size of each level *)
  density : float;
}

let of_tensor (x : Tensor.t) =
  let n = Array.length (Tensor.dims x) in
  {
    dims = Tensor.dims x;
    nnz = Tensor.nnz x;
    num_vals = Tensor.num_vals x;
    level_positions = Array.init n (Tensor.num_positions x);
    density = Tensor.density x;
  }

(** Average number of children per position at level [l] (fiber length). *)
let avg_fiber_len s l =
  let parent = if l = 0 then 1 else s.level_positions.(l - 1) in
  if parent = 0 then 0.0
  else float_of_int s.level_positions.(l) /. float_of_int parent

let pp ppf s =
  Fmt.pf ppf "dims=%a nnz=%d vals=%d density=%.3e levels=%a"
    Fmt.(brackets (array ~sep:(any "x") int))
    s.dims s.nnz s.num_vals s.density
    Fmt.(brackets (array ~sep:comma int))
    s.level_positions

(* -------------------------------------------------------------------- *)
(* Co-iteration cardinalities                                            *)
(* -------------------------------------------------------------------- *)

let sorted_coords (x : Tensor.t) =
  let l = Tensor.fold_nonzeros (fun acc c _ -> c :: acc) [] x in
  let a = Array.of_list l in
  Array.sort compare a;
  a

let count_merge ~keep_both a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and inter = ref 0 and union = ref 0 in
  while !i < na && !j < nb do
    let c = compare a.(!i) b.(!j) in
    if c = 0 then (incr inter; incr union; incr i; incr j)
    else if c < 0 then (incr union; incr i)
    else (incr union; incr j)
  done;
  union := !union + (na - !i) + (nb - !j);
  if keep_both then (!inter, !union) else (!inter, !union)

(** Number of coordinate paths present in {e both} tensors (the trip count of
    an intersection co-iteration over full coordinates). *)
let intersection_nnz a b =
  fst (count_merge ~keep_both:true (sorted_coords a) (sorted_coords b))

(** Number of coordinate paths present in {e either} tensor (the trip count
    of a union co-iteration over full coordinates). *)
let union_nnz a b =
  snd (count_merge ~keep_both:true (sorted_coords a) (sorted_coords b))

(** Union cardinality of several tensors (e.g. Plus3's three-way add). *)
let union_nnz_many = function
  | [] -> 0
  | [ x ] -> Tensor.nnz x
  | x :: rest ->
      let tbl = Hashtbl.create 1024 in
      List.iter
        (fun t ->
          Tensor.iter_nonzeros (fun c _ -> Hashtbl.replace tbl (Array.to_list c) ()) t)
        (x :: rest);
      Hashtbl.length tbl

(** Rows (leading-dimension slices) with at least one stored nonzero. *)
let nonempty_rows (x : Tensor.t) =
  let seen = Hashtbl.create 256 in
  Tensor.iter_nonzeros (fun c _ -> Hashtbl.replace seen c.(0) ()) x;
  Hashtbl.length seen

(** [prefix_coiter_count ~union a b ~depth] is the number of distinct
    coordinate prefixes of length [depth + 1] present in both
    ([union = false]) or either ([union = true]) tensor — exactly the total
    number of iterations a depth-[depth] co-iteration loop executes across
    a whole kernel. *)
let prefix_coiter_count ~union (a : Tensor.t) (b : Tensor.t) ~depth =
  let identity_order (x : Tensor.t) =
    let mo = (Tensor.format x).Format.mode_order in
    List.for_all2 ( = ) mo (List.init (List.length mo) Fun.id)
  in
  if identity_order a && identity_order b then begin
    (* Fast path: storage order is lexicographic, so distinct prefixes can
       be counted by a linear merge over the sorted nonzero streams. *)
    let prefixes t =
      let out = ref [] and n = ref 0 and last = ref [||] in
      Tensor.iter_nonzeros
        (fun c _ ->
          let p = Array.sub c 0 (depth + 1) in
          if !n = 0 || compare p !last <> 0 then begin
            out := p :: !out;
            last := p;
            incr n
          end)
        t;
      Array.of_list (List.rev !out)
    in
    let pa = prefixes a and pb = prefixes b in
    let na = Array.length pa and nb = Array.length pb in
    let i = ref 0 and j = ref 0 and inter = ref 0 in
    while !i < na && !j < nb do
      let c = compare pa.(!i) pb.(!j) in
      if c = 0 then (incr inter; incr i; incr j)
      else if c < 0 then incr i
      else incr j
    done;
    if union then na + nb - !inter else !inter
  end
  else begin
    let prefixes t =
      let tbl = Hashtbl.create 1024 in
      Tensor.iter_nonzeros
        (fun c _ ->
          Hashtbl.replace tbl (Array.to_list (Array.sub c 0 (depth + 1))) ())
        t;
      tbl
    in
    let pa = prefixes a and pb = prefixes b in
    let count = ref 0 in
    if union then begin
      Hashtbl.iter (fun k () -> if not (Hashtbl.mem pb k) then incr count) pa;
      !count + Hashtbl.length pb
    end
    else begin
      Hashtbl.iter (fun k () -> if Hashtbl.mem pb k then incr count) pa;
      !count
    end
  end

(** [fiber_launch_total ~par x l] is the total pipeline occupancy, in
    vector-lane-group cycles, of iterating every fiber of compressed level
    [l] with [par]-wide sparse lanes: a fiber of [n > 0] elements occupies
    [max n par / par] cycles (short fibers cannot fill the vector width).
    Empty fibers contribute nothing (their launch overhead is charged
    separately). *)
let fiber_launch_total ~par (x : Tensor.t) l =
  match x.Tensor.levels.(l) with
  | Tensor.Dense_level { dim } ->
      let fibers = if l = 0 then 1 else Tensor.num_positions x (l - 1) in
      float_of_int (fibers * max dim par) /. float_of_int par
  | Tensor.Compressed_level { pos; _ } ->
      let acc = ref 0.0 in
      for p = 0 to Array.length pos - 2 do
        let n = pos.(p + 1) - pos.(p) in
        if n > 0 then acc := !acc +. (float_of_int (max n par) /. float_of_int par)
      done;
      !acc

(** Sorted distinct coordinate prefixes of length [depth + 1] (requires an
    identity mode order so storage order is lexicographic). *)
let sorted_prefixes (t : Tensor.t) ~depth =
  let out = ref [] and n = ref 0 and last = ref [||] in
  Tensor.iter_nonzeros
    (fun c _ ->
      let p = Array.sub c 0 (depth + 1) in
      if !n = 0 || compare p !last <> 0 then begin
        out := p :: !out;
        last := p;
        incr n
      end)
    t;
  Array.of_list (List.rev !out)

(** Like {!fiber_launch_total} but for the {e co-iteration} of two tensors
    at level [depth]: groups the surviving coordinates by their parent
    prefix and charges [max m par / par] per group of [m]. *)
let coiter_launch_total ~union ~par (a : Tensor.t) (b : Tensor.t) ~depth =
  let pa = sorted_prefixes a ~depth and pb = sorted_prefixes b ~depth in
  let na = Array.length pa and nb = Array.length pb in
  let parent p = Array.sub p 0 depth in
  let acc = ref 0.0 in
  let group = ref [||] and m = ref 0 in
  let flush () =
    if !m > 0 then
      acc := !acc +. (float_of_int (max !m par) /. float_of_int par);
    m := 0
  in
  let visit p =
    let g = parent p in
    if !m = 0 || compare g !group <> 0 then begin
      flush ();
      group := g
    end;
    incr m
  in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let c = compare pa.(!i) pb.(!j) in
    if c = 0 then begin
      visit pa.(!i);
      incr i;
      incr j
    end
    else if c < 0 then begin
      if union then visit pa.(!i);
      incr i
    end
    else begin
      if union then visit pb.(!j);
      incr j
    end
  done;
  if union then begin
    while !i < na do visit pa.(!i); incr i done;
    while !j < nb do visit pb.(!j); incr j done
  end;
  flush ();
  !acc

(** Maximum fiber length at compressed level [l] (worst-case segment). *)
let max_fiber_len (x : Tensor.t) l =
  match x.Tensor.levels.(l) with
  | Tensor.Dense_level { dim } -> dim
  | Tensor.Compressed_level { pos; _ } ->
      let m = ref 0 in
      for p = 0 to Array.length pos - 2 do
        m := max !m (pos.(p + 1) - pos.(p))
      done;
      !m
