lib/tensor/stats.pp.ml: Array Fmt Format Fun Hashtbl List Tensor
