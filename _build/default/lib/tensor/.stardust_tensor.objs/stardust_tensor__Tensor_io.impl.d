lib/tensor/tensor_io.pp.ml: Array Coo Fmt Fun List Printf String Tensor
