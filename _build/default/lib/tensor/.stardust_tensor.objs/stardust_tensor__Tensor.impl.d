lib/tensor/tensor.pp.ml: Array Coo Float Fmt Format List Option
