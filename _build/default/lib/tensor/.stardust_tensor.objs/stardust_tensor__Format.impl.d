lib/tensor/format.pp.ml: Fmt Fun Int List Ppx_deriving_runtime Printf String
