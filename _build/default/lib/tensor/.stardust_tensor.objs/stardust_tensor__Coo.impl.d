lib/tensor/coo.pp.ml: Array Fun List Printf
