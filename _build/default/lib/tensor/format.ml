(** Tensor format language (Chou et al. [OOPSLA'18]) extended with the
    Stardust memory-region property (paper section 5.1).

    A format decomposes an order-[n] tensor into [n] per-dimension {e level
    formats}.  Each level stores the coordinates of one tensor dimension,
    either densely (an implicit [0 .. dim) range) or compressed (explicit
    position/coordinate arrays, as in CSR).  A {e mode ordering} permutes the
    logical dimensions into storage order, which is how the same level kinds
    express both CSR and CSC.

    Stardust adds a {e memory region} to every format: tensors either live
    off-chip (host-visible DRAM) or on-chip (accelerator-local memory).  The
    region is a coarse-grained placement; binding individual sub-arrays to
    specific physical memories is done later by {!Stardust_core.Memory}. *)

(** How one tensor dimension's coordinates are stored. *)
type level_kind =
  | Dense  (** Implicit [0, dim) coordinate range; no index arrays. *)
  | Compressed
      (** Explicit sparse coordinates: a positions array segmenting a
          coordinates array, as in the row pointers / column ids of CSR. *)
[@@deriving show { with_path = false }, eq, ord]

(** Coarse-grained memory placement of a whole tensor (section 5.1).  The
    fine-grained physical memory of each sub-array is inferred later. *)
type memory_region =
  | Off_chip  (** Globally visible DRAM, initialised by the host. *)
  | On_chip   (** Accelerator-local memory, visible to one backend only. *)
[@@deriving show { with_path = false }, eq, ord]

type t = {
  levels : level_kind list;  (** Per-level kinds, in storage (mode) order. *)
  mode_order : int list;
      (** Permutation mapping storage level -> logical dimension.  Entry [l]
          is the logical dimension stored at level [l].  [[0; 1]] is row-major
          for a matrix; [[1; 0]] is column-major. *)
  region : memory_region;
}
[@@deriving show { with_path = false }, eq, ord]

let order t = List.length t.levels

(** [make ?mode_order ?region levels] builds a format.  The default mode
    order is the identity permutation and the default region is off-chip.

    @raise Invalid_argument if [mode_order] is not a permutation of
    [0 .. length levels - 1]. *)
let make ?mode_order ?(region = Off_chip) levels =
  let n = List.length levels in
  let mode_order =
    match mode_order with None -> List.init n Fun.id | Some mo -> mo
  in
  if List.length mode_order <> n then
    invalid_arg "Format.make: mode_order length mismatch";
  let sorted = List.sort Int.compare mode_order in
  if not (List.equal Int.equal sorted (List.init n Fun.id)) then
    invalid_arg "Format.make: mode_order is not a permutation";
  { levels; mode_order; region }

(** Fully dense tensor of the given order. *)
let dense ?(region = Off_chip) n = make ~region (List.init n (fun _ -> Dense))

(** Dense vector. *)
let dv ?region () = dense ?region 1

(** Sparse (compressed) vector. *)
let sv ?(region = Off_chip) () = make ~region [ Compressed ]

(** Compressed sparse row: dense rows, compressed columns. *)
let csr ?(region = Off_chip) () = make ~region [ Dense; Compressed ]

(** Compressed sparse column: column-major CSR. *)
let csc ?(region = Off_chip) () =
  make ~mode_order:[ 1; 0 ] ~region [ Dense; Compressed ]

(** Row-major dense matrix. *)
let rm ?(region = Off_chip) () = dense ~region 2

(** Column-major dense matrix. *)
let cm ?(region = Off_chip) () = make ~mode_order:[ 1; 0 ] ~region [ Dense; Dense ]

(** Compressed sparse fiber for an order-[n] tensor: every level compressed. *)
let csf ?(region = Off_chip) n =
  make ~region (List.init n (fun _ -> Compressed))

(** The uncompressed-compressed-compressed "CSR-like" order-3 format used by
    the paper for InnerProd and Plus2. *)
let ucc ?(region = Off_chip) () = make ~region [ Dense; Compressed; Compressed ]

(** [with_region region t] re-homes the tensor format in [region]. *)
let with_region region t = { t with region }

let on_chip t = with_region On_chip t
let off_chip t = with_region Off_chip t
let is_on_chip t = t.region = On_chip

(** [level_of_dim t d] is the storage level holding logical dimension [d]. *)
let level_of_dim t d =
  let rec find l = function
    | [] -> invalid_arg "Format.level_of_dim: no such dimension"
    | x :: _ when x = d -> l
    | _ :: tl -> find (l + 1) tl
  in
  find 0 t.mode_order

(** [dim_of_level t l] is the logical dimension stored at level [l]. *)
let dim_of_level t l =
  match List.nth_opt t.mode_order l with
  | Some d -> d
  | None -> invalid_arg "Format.dim_of_level: no such level"

let level_kind t l =
  match List.nth_opt t.levels l with
  | Some k -> k
  | None -> invalid_arg "Format.level_kind: no such level"

let is_fully_dense t = List.for_all (fun k -> k = Dense) t.levels
let num_compressed t = List.length (List.filter (fun k -> k = Compressed) t.levels)

(** Short human-readable name, e.g. ["csr"], ["csf3"], ["d2"]. *)
let short_name t =
  match (t.levels, t.mode_order) with
  | [ Dense ], _ -> "dv"
  | [ Compressed ], _ -> "sv"
  | [ Dense; Compressed ], [ 0; 1 ] -> "csr"
  | [ Dense; Compressed ], [ 1; 0 ] -> "csc"
  | [ Dense; Dense ], [ 0; 1 ] -> "rm"
  | [ Dense; Dense ], [ 1; 0 ] -> "cm"
  | [ Dense; Compressed; Compressed ], [ 0; 1; 2 ] -> "ucc"
  | levels, _ when List.for_all (fun k -> k = Compressed) levels ->
      Printf.sprintf "csf%d" (List.length levels)
  | levels, _ when List.for_all (fun k -> k = Dense) levels ->
      Printf.sprintf "d%d" (List.length levels)
  | levels, _ ->
      String.concat ""
        (List.map (function Dense -> "u" | Compressed -> "c") levels)

let pp_short ppf t =
  Fmt.pf ppf "%s@%s" (short_name t)
    (match t.region with Off_chip -> "off" | On_chip -> "on")
