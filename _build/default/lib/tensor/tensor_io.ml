(** Tensor file I/O: Matrix Market (.mtx) and FROSTT (.tns) coordinate
    formats — the interchange formats of SuiteSparse and the FROSTT sparse
    tensor collection the paper's datasets come from.  With these, the
    benchmark suite can run on the original inputs when they are available
    instead of the synthetic stand-ins. *)

exception Io_error of string

let err fmt = Fmt.kstr (fun s -> raise (Io_error s)) fmt

let split_ws line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* ------------------------------------------------------------------ *)
(* Matrix Market                                                       *)
(* ------------------------------------------------------------------ *)

(** Read a Matrix Market coordinate file (real/integer/pattern, general or
    symmetric) into a tensor of the given [format].

    @raise Io_error on malformed input. *)
let read_matrix_market ?(name = "mtx") ~format path =
  let ic = try open_in path with Sys_error m -> err "%s" m in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let header = try input_line ic with End_of_file -> err "%s: empty file" path in
  if not (String.length header > 14 && String.sub header 0 14 = "%%MatrixMarket")
  then err "%s: missing MatrixMarket header" path;
  let lower = String.lowercase_ascii header in
  let has s =
    let n = String.length lower and m = String.length s in
    let rec go i = i + m <= n && (String.sub lower i m = s || go (i + 1)) in
    go 0
  in
  if not (has "coordinate") then err "%s: only coordinate matrices supported" path;
  let symmetric = has "symmetric" in
  let pattern = has "pattern" in
  (* skip comments *)
  let rec size_line () =
    let l = input_line ic in
    if String.length l > 0 && l.[0] = '%' then size_line () else l
  in
  let rows, cols, nnz =
    match split_ws (size_line ()) with
    | [ r; c; n ] -> (int_of_string r, int_of_string c, int_of_string n)
    | _ -> err "%s: bad size line" path
  in
  let coo = Coo.create [| rows; cols |] in
  for _ = 1 to nnz do
    let l = input_line ic in
    match split_ws l with
    | i :: j :: rest ->
        let i = int_of_string i - 1 and j = int_of_string j - 1 in
        let v =
          if pattern then 1.0
          else
            match rest with
            | v :: _ -> float_of_string v
            | [] -> err "%s: missing value in %S" path l
        in
        Coo.add coo [| i; j |] v;
        if symmetric && i <> j then Coo.add coo [| j; i |] v
    | _ -> err "%s: bad entry %S" path l
  done;
  Tensor.of_coo ~name ~format coo

(** Write a tensor (order 2) as a general real Matrix Market file. *)
let write_matrix_market (t : Tensor.t) path =
  if Tensor.order t <> 2 then err "write_matrix_market: order-%d tensor" (Tensor.order t);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  Printf.fprintf oc "%%%%MatrixMarket matrix coordinate real general\n";
  let dims = Tensor.dims t in
  Printf.fprintf oc "%d %d %d\n" dims.(0) dims.(1) (Tensor.nnz t);
  Tensor.iter_nonzeros
    (fun c v -> Printf.fprintf oc "%d %d %.17g\n" (c.(0) + 1) (c.(1) + 1) v)
    t

(* ------------------------------------------------------------------ *)
(* FROSTT .tns                                                         *)
(* ------------------------------------------------------------------ *)

(** Read a FROSTT coordinate tensor ([i1 ... iN value] per line, 1-based).
    Dimensions are inferred as the per-mode maxima unless [dims] is given.

    @raise Io_error on malformed or ragged input. *)
let read_tns ?(name = "tns") ?dims ~format path =
  let ic = try open_in path with Sys_error m -> err "%s" m in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let entries = ref [] in
  let order = ref 0 in
  (try
     while true do
       let l = input_line ic in
       let l = String.trim l in
       if l <> "" && l.[0] <> '#' then begin
         let fields = split_ws l in
         let n = List.length fields - 1 in
         if n < 1 then err "%s: bad line %S" path l;
         if !order = 0 then order := n
         else if !order <> n then err "%s: ragged entry %S" path l;
         let coords =
           List.filteri (fun i _ -> i < n) fields
           |> List.map (fun s -> int_of_string s - 1)
         in
         let v = float_of_string (List.nth fields n) in
         entries := (coords, v) :: !entries
       end
     done
   with End_of_file -> ());
  if !order = 0 then err "%s: no entries" path;
  let dims =
    match dims with
    | Some d ->
        if List.length d <> !order then err "%s: dims arity mismatch" path;
        d
    | None ->
        List.init !order (fun m ->
            1 + List.fold_left (fun acc (c, _) -> max acc (List.nth c m)) 0 !entries)
  in
  let coo = Coo.create (Array.of_list dims) in
  List.iter (fun (c, v) -> Coo.add coo (Array.of_list c) v) !entries;
  Tensor.of_coo ~name ~format coo

(** Write any tensor in FROSTT coordinate form. *)
let write_tns (t : Tensor.t) path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  Tensor.iter_nonzeros
    (fun c v ->
      Array.iter (fun x -> Printf.fprintf oc "%d " (x + 1)) c;
      Printf.fprintf oc "%.17g\n" v)
    t
