(** Coordinate-list (COO) tensor builder.

    A COO buffer accumulates [(coordinates, value)] pairs in arbitrary order
    and possibly with duplicates, in an amortised-growth array (paper-scale
    datasets reach millions of entries).  {!finalize} canonicalises the
    buffer — sorting entries lexicographically in a given mode order,
    summing duplicates, and dropping explicit zeros — which is the form
    consumed by the level-format packer in {!Tensor}. *)

type t = {
  dims : int array;
  mutable entries : (int array * float) array;  (** first [count] are live *)
  mutable count : int;
}

let create dims =
  if Array.length dims = 0 then invalid_arg "Coo.create: order-0 tensor";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Coo.create: dim <= 0") dims;
  { dims = Array.copy dims; entries = [||]; count = 0 }

let order t = Array.length t.dims
let dims t = Array.copy t.dims
let length t = t.count

let grow t =
  let cap = Array.length t.entries in
  if t.count >= cap then begin
    let cap' = max 16 (2 * cap) in
    let fresh = Array.make cap' ([||], 0.0) in
    Array.blit t.entries 0 fresh 0 t.count;
    t.entries <- fresh
  end

(** [add t coords v] appends one entry.

    @raise Invalid_argument if [coords] has the wrong arity or is out of
    bounds. *)
let add t coords v =
  if Array.length coords <> Array.length t.dims then
    invalid_arg "Coo.add: wrong coordinate arity";
  Array.iteri
    (fun i c ->
      if c < 0 || c >= t.dims.(i) then
        invalid_arg
          (Printf.sprintf "Coo.add: coordinate %d out of bounds (%d not in [0,%d))"
             i c t.dims.(i)))
    coords;
  grow t;
  t.entries.(t.count) <- (Array.copy coords, v);
  t.count <- t.count + 1

let add_list t l = List.iter (fun (c, v) -> add t (Array.of_list c) v) l

(** Lexicographic comparison of coordinates permuted by [mode_order]. *)
let compare_permuted mode_order a b =
  let rec go = function
    | [] -> 0
    | d :: rest ->
        let c = compare a.(d) b.(d) in
        if c <> 0 then c else go rest
  in
  go mode_order

(** [finalize ?mode_order t] returns the canonical entries: sorted
    lexicographically in storage order, duplicate coordinates summed, and
    entries whose summed value is exactly [0.0] removed. *)
let finalize_array ?mode_order t =
  let mode_order =
    match mode_order with
    | None -> List.init (order t) Fun.id
    | Some mo -> mo
  in
  let sorted = Array.sub t.entries 0 t.count in
  Array.sort (fun (a, _) (b, _) -> compare_permuted mode_order a b) sorted;
  (* Merge runs of equal coordinates in place, accumulating values. *)
  let out = ref 0 in
  let i = ref 0 in
  let n = Array.length sorted in
  while !i < n do
    let c, v = sorted.(!i) in
    let acc = ref v in
    incr i;
    while
      !i < n
      && compare_permuted mode_order c (fst sorted.(!i)) = 0
    do
      acc := !acc +. snd sorted.(!i);
      incr i
    done;
    if !acc <> 0.0 then begin
      sorted.(!out) <- (c, !acc);
      incr out
    end
  done;
  Array.sub sorted 0 !out

(** List view of {!finalize_array} (kept for small-scale callers). *)
let finalize ?mode_order t = Array.to_list (finalize_array ?mode_order t)

(** Number of distinct nonzero coordinates after canonicalisation. *)
let nnz t = Array.length (finalize_array t)

let of_list dims l =
  let t = create (Array.of_list dims) in
  add_list t l;
  t
