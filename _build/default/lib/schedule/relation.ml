(** Index-variable provenance relations introduced by loop transformations.

    [split_up]/[split_down] and [fuse] replace one index variable with
    derived ones; tensor accesses keep referring to the original variable,
    and lowering reconstructs it from the derived variables using these
    relations (TACO records the same facts in [suchthat] nodes). *)

type t =
  | Split_up of {
      parent : string;
      outer : string;
      inner : string;
      factor : int;  (** inner extent; [parent = outer * factor + inner] *)
    }
  | Split_down of {
      parent : string;
      outer : string;
      inner : string;
      factor : int;  (** outer extent; inner extent is [ceil(N / factor)] *)
    }
  | Fused of { outer : string; inner : string; fused : string }
[@@deriving show { with_path = false }, eq]

(** Variables defined (introduced) by a relation. *)
let defined = function
  | Split_up { outer; inner; _ } | Split_down { outer; inner; _ } ->
      [ outer; inner ]
  | Fused { fused; _ } -> [ fused ]

(** Variables consumed (removed from the loop nest) by a relation. *)
let consumed = function
  | Split_up { parent; _ } | Split_down { parent; _ } -> [ parent ]
  | Fused { outer; inner; _ } -> [ outer; inner ]

(** [recoverable rels bound] is the set of variables whose value can be
    computed given that all variables in [bound] are bound: the fixpoint of
    applying relations backwards (split: parent from outer+inner; fuse:
    outer and inner from fused). *)
let recoverable rels bound =
  let known = ref bound in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let need = defined r and get = consumed r in
        if
          List.for_all (fun v -> List.mem v !known) need
          && List.exists (fun v -> not (List.mem v !known)) get
        then begin
          known := get @ !known;
          changed := true
        end)
      rels
  done;
  !known

(** [extent_of rels extents v] computes the iteration extent of a derived
    variable [v] given base extents [extents : string -> int option]. *)
let rec extent_of rels extents v =
  match extents v with
  | Some n -> Some n
  | None ->
      List.find_map
        (fun r ->
          match r with
          | Split_up { parent; outer; inner; factor } ->
              if v = inner then Some factor
              else if v = outer then
                Option.map
                  (fun n -> (n + factor - 1) / factor)
                  (extent_of rels extents parent)
              else None
          | Split_down { parent; outer; inner; factor } ->
              if v = outer then Some factor
              else if v = inner then
                Option.map
                  (fun n -> (n + factor - 1) / factor)
                  (extent_of rels extents parent)
              else None
          | Fused { outer; inner; fused } ->
              if v = fused then
                match
                  (extent_of rels extents outer, extent_of rels extents inner)
                with
                | Some a, Some b -> Some (a * b)
                | _ -> None
              else None)
        rels
