lib/schedule/relation.pp.ml: List Option Ppx_deriving_runtime
