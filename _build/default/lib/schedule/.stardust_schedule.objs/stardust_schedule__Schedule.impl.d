lib/schedule/schedule.pp.ml: Fmt Fun List Option Relation Stardust_ir Stardust_tensor
