(** The Stardust scheduling language (paper Tables 1 and 2).

    A {!t} is a scheduled program: a CIN statement plus the format
    environment for every tensor it mentions, the global hardware
    configuration variables set by [environment], the index-variable
    relations introduced by loop transformations, and a trace of applied
    commands (used for the paper's input-lines-of-code accounting).

    Commands from prior TACO work: {!precompute}, {!split_up},
    {!split_down}, {!fuse}, {!reorder}.  New Stardust commands:
    {!map_to}, {!accelerate}, {!set_environment}. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin

exception Schedule_error of string

let err fmt = Fmt.kstr (fun s -> raise (Schedule_error s)) fmt

type t = {
  stmt : Cin.stmt;
  formats : (string * Format.t) list;  (** every tensor name -> format *)
  environment : (string * int) list;  (** global configuration variables *)
  relations : Relation.t list;
  temporaries : string list;  (** tensors introduced by scheduling *)
  trace : string list;  (** applied commands, oldest first *)
}

let stmt t = t.stmt
let environment t = t.environment
let relations t = t.relations
let trace t = List.rev t.trace

let format_of t name =
  match List.assoc_opt name t.formats with
  | Some f -> f
  | None -> err "no format declared for tensor %s" name

let has_tensor t name = List.mem_assoc name t.formats

let log cmd t = { t with trace = cmd :: t.trace }

(** [of_assign ~formats a] concretizes an index-notation assignment into the
    canonical CIN loop nest.  [formats] must cover every tensor in [a].

    When the right-hand side mixes terms with and without reduction
    variables (e.g. Residual's [y(i) = b(i) - A(i,j)*x(j)]), the naive nest
    [forall i forall j (y += b - A*x)] would add [b] once per [j]; instead
    the reduction terms are automatically precomputed into an on-chip
    scalar workspace [_rs] under a [where] node, matching the workspaces
    transformation of Kjolstad et al.

    @raise Schedule_error on a missing format, arity mismatch, or a term
    that covers only part of the reduction space. *)
let of_assign ~formats (a : Ast.assign) =
  let check (acc : Ast.access) =
    match List.assoc_opt acc.tensor formats with
    | None -> err "of_assign: tensor %s has no declared format" acc.tensor
    | Some f ->
        if Format.order f <> List.length acc.indices then
          err "of_assign: tensor %s is order-%d but accessed with %d indices"
            acc.tensor (Format.order f)
            (List.length acc.indices)
  in
  check a.lhs;
  List.iter check (Ast.accesses_of_expr a.rhs);
  let rvars = Ast.reduction_vars a in
  let terms = Ast.linear_terms a.Ast.rhs in
  let covers_all (_, t) =
    List.for_all (fun v -> List.mem v (Ast.indices_of_expr t)) rvars
  in
  let stmt, formats, temporaries =
    if rvars = [] || List.for_all covers_all terms then
      (Cin.concretize a, formats, [])
    else begin
      let red, nonred =
        List.partition
          (fun (_, t) ->
            List.exists (fun v -> List.mem v rvars) (Ast.indices_of_expr t))
          terms
      in
      (match List.find_opt (Fun.negate covers_all) red with
      | Some (_, t) ->
          err "of_assign: term %a covers only part of the reduction space"
            Ast.pp_expr t
      | None -> ());
      let ws = "_rs" in
      let consumer =
        Cin.Assign
          {
            a with
            rhs = Ast.of_linear_terms (nonred @ [ (false, Ast.access ws []) ]);
          }
      in
      let producer =
        Cin.foralls rvars
          (Cin.Assign
             {
               lhs = { tensor = ws; indices = [] };
               accum = true;
               rhs = Ast.of_linear_terms red;
             })
      in
      ( Cin.foralls a.Ast.lhs.Ast.indices (Cin.Where { consumer; producer }),
        (ws, Format.make ~region:Format.On_chip []) :: formats,
        [ ws ] )
    end
  in
  {
    stmt;
    formats;
    environment = [];
    relations = [];
    temporaries;
    trace = [ Fmt.str "algorithm: %a" Ast.pp_assign a ];
  }

(* -------------------------------------------------------------------- *)
(* environment (Table 2)                                                 *)
(* -------------------------------------------------------------------- *)

(** [set_environment t var c] sets a global hardware configuration variable
    (e.g. [innerPar], [outerPar]) passed through to the backend. *)
let set_environment t var c =
  log (Fmt.str "environment(%s, %d)" var c)
    { t with environment = (var, c) :: List.remove_assoc var t.environment }

let env_value ?default t var =
  match (List.assoc_opt var t.environment, default) with
  | Some v, _ -> v
  | None, Some d -> d
  | None, None -> err "environment variable %s is unset" var

(* -------------------------------------------------------------------- *)
(* precompute (Table 1)                                                  *)
(* -------------------------------------------------------------------- *)

let rec expr_contains ~needle e =
  Ast.equal_expr e needle
  ||
  match e with
  | Ast.Access _ | Ast.Const _ -> false
  | Ast.Neg e' -> expr_contains ~needle e'
  | Ast.Bin (_, a, b) -> expr_contains ~needle a || expr_contains ~needle b

let rec expr_replace ~needle ~by e =
  if Ast.equal_expr e needle then by
  else
    match e with
    | Ast.Access _ | Ast.Const _ -> e
    | Ast.Neg e' -> Ast.Neg (expr_replace ~needle ~by e')
    | Ast.Bin (op, a, b) ->
        Ast.Bin (op, expr_replace ~needle ~by a, expr_replace ~needle ~by b)

(** First assignment in [s] whose right-hand side contains [needle]. *)
let find_assign_with ~needle s =
  Cin.fold
    (fun acc n ->
      match (acc, n) with
      | Some _, _ -> acc
      | None, Cin.Assign a when expr_contains ~needle a.Ast.rhs -> Some a
      | None, _ -> None)
    None s

(** [precompute t e i_star iw_star (name, fmt)] inserts a [where] node that
    precomputes sub-expression [e] into a temporary tensor [name] (Table 1).

    Two shapes are supported, mirroring the paper's uses:

    - [i_star = []] (scalar workspace, Figure 5 line 22): the innermost
      forall nest over the reduction variables of [e] moves into the
      producer, which accumulates into the scalar temporary; the consumer
      reads it back.  This exposes the forall-accumulation pattern that
      [accelerate] later maps to a [Reduce].

    - [i_star <> []] (tensor staging, Figure 6): every occurrence of [e] in
      the matched assignment is replaced by [name(i_star)], and a producer
      [forall(iw_star) name(iw_star) = e\[iw_star/i_star\]] is attached with
      a [where] node — at the top level by default, or inside the forall
      over [?at] for partial (per-iteration) staging as in Figure 6a. *)
let precompute ?at t e i_star iw_star (name, fmt) =
  if has_tensor t name then err "precompute: tensor %s already exists" name;
  if List.length i_star <> List.length iw_star then
    err "precompute: i* and iw* must have equal length";
  (match find_assign_with ~needle:e t.stmt with
  | None -> err "precompute: expression %a not found" Ast.pp_expr e
  | Some _ -> ());
  let ren = List.combine i_star iw_star in
  let stmt' =
    if i_star = [] then begin
      (* Scalar-workspace case: hoist the reduction loops into the producer. *)
      let target = Option.get (find_assign_with ~needle:e t.stmt) in
      let evars = Ast.indices_of_expr e in
      let rvars =
        List.filter (fun v -> List.mem v (Ast.reduction_vars target)) evars
      in
      (* The forall nest over [rvars] must directly wrap the assignment. *)
      let rec rewrite s =
        match s with
        | Cin.Forall { index; body } when List.mem index rvars ->
            (* Collect the full nest from here down. *)
            let rec collect vars s =
              match s with
              | Cin.Forall { index; body } when List.mem index rvars ->
                  collect (index :: vars) body
              | Cin.Assign a when Ast.equal_assign a target ->
                  Some (List.rev vars, a)
              | _ -> None
            in
            (match collect [] s with
            | Some (vars, a) ->
                let remaining =
                  List.filter (fun v -> not (List.mem v vars)) (Ast.reduction_vars a)
                in
                let consumer_accum =
                  remaining <> [] || (a.Ast.accum && Ast.reduction_vars a = [])
                in
                let consumer =
                  Cin.Assign
                    {
                      a with
                      accum = consumer_accum;
                      rhs =
                        expr_replace ~needle:e
                          ~by:(Ast.access name [])
                          a.Ast.rhs;
                    }
                in
                let producer =
                  Cin.foralls vars
                    (Cin.Assign { lhs = { tensor = name; indices = [] };
                                  accum = vars <> [];
                                  rhs = e })
                in
                Cin.Where { consumer; producer }
            | None -> Cin.Forall { index; body = rewrite body })
        | Cin.Forall r -> Cin.Forall { r with body = rewrite r.body }
        | Cin.Where { consumer; producer } ->
            Cin.Where { consumer = rewrite consumer; producer = rewrite producer }
        | Cin.Sequence l -> Cin.Sequence (List.map rewrite l)
        | Cin.Mapped r -> Cin.Mapped { r with body = rewrite r.body }
        | Cin.Assign _ -> s
      in
      rewrite t.stmt
    end
    else begin
      (* Tensor-staging case. *)
      let by = Ast.access name i_star in
      let replaced =
        Cin.map_stmt
          (function
            | Cin.Assign a when expr_contains ~needle:e a.Ast.rhs ->
                Cin.Assign { a with rhs = expr_replace ~needle:e ~by a.Ast.rhs }
            | s -> s)
          t.stmt
      in
      let producer =
        Cin.foralls iw_star
          (Cin.Assign
             {
               lhs = { tensor = name; indices = iw_star };
               accum = false;
               rhs = Ast.subst_indices e ren;
             })
      in
      match at with
      | None -> Cin.Where { consumer = replaced; producer }
      | Some v ->
          let placed = ref false in
          let s' =
            Cin.map_stmt
              (function
                | Cin.Forall { index; body } when index = v && not !placed ->
                    placed := true;
                    Cin.Forall { index; body = Cin.Where { consumer = body; producer } }
                | s -> s)
              replaced
          in
          if not !placed then err "precompute: no forall over %s to place producer" v;
          s'
    end
  in
  log
    (Fmt.str "precompute(%a, {%a}, {%a}, %s)" Ast.pp_expr e
       Fmt.(list ~sep:comma string)
       i_star
       Fmt.(list ~sep:comma string)
       iw_star name)
    {
      t with
      stmt = stmt';
      formats = (name, fmt) :: t.formats;
      temporaries = name :: t.temporaries;
    }

(* -------------------------------------------------------------------- *)
(* Loop transformations (Table 1)                                        *)
(* -------------------------------------------------------------------- *)

let rewrite_forall t v f =
  let found = ref false in
  let stmt' =
    Cin.map_stmt
      (function
        | Cin.Forall { index; body } when index = v && not !found ->
            found := true;
            f body
        | s -> s)
      t.stmt
  in
  if not !found then err "no forall over %s in statement" v;
  { t with stmt = stmt' }

(** [split_up t i io ii c] stripmines [forall i] into an outer [io] and a
    constant-factor-[c] inner [ii] nest ([i = io * c + ii]). *)
let split_up t i io ii c =
  if c <= 0 then err "split_up: factor must be positive";
  let t' = rewrite_forall t i (fun body -> Cin.forall io (Cin.forall ii body)) in
  log
    (Fmt.str "split_up(%s, %s, %s, %d)" i io ii c)
    {
      t' with
      relations =
        Relation.Split_up { parent = i; outer = io; inner = ii; factor = c }
        :: t'.relations;
    }

(** [split_down t i io ii c] stripmines [forall i] into a constant-factor-[c]
    outer [io] and an inner [ii] nest. *)
let split_down t i io ii c =
  if c <= 0 then err "split_down: factor must be positive";
  let t' = rewrite_forall t i (fun body -> Cin.forall io (Cin.forall ii body)) in
  log
    (Fmt.str "split_down(%s, %s, %s, %d)" i io ii c)
    {
      t' with
      relations =
        Relation.Split_down { parent = i; outer = io; inner = ii; factor = c }
        :: t'.relations;
    }

(** [fuse t io ii i_f] collapses the directly nested [forall io (forall ii)]
    into a single [forall i_f]. *)
let fuse t io ii i_f =
  let found = ref false in
  let stmt' =
    Cin.map_stmt
      (function
        | Cin.Forall { index; body = Cin.Forall { index = index_i; body } }
          when index = io && index_i = ii && not !found ->
            found := true;
            Cin.forall i_f body
        | s -> s)
      t.stmt
  in
  if not !found then err "fuse: no nest forall(%s) forall(%s)" io ii;
  log
    (Fmt.str "fuse(%s, %s, %s)" io ii i_f)
    {
      t with
      stmt = stmt';
      relations = Relation.Fused { outer = io; inner = ii; fused = i_f } :: t.relations;
    }

(** [reorder t vars] permutes the outermost perfect forall nest to the order
    given.  [vars] must be a permutation of that nest's variables. *)
let reorder t vars =
  let rec collect acc = function
    | Cin.Forall { index; body } -> collect (index :: acc) body
    | s -> (List.rev acc, s)
  in
  let nest, body = collect [] t.stmt in
  if nest = [] then err "reorder: statement has no outer forall nest";
  if List.sort compare nest <> List.sort compare vars then
    err "reorder: {%a} is not a permutation of the nest {%a}"
      Fmt.(list ~sep:comma string)
      vars
      Fmt.(list ~sep:comma string)
      nest;
  log
    (Fmt.str "reorder(%a)" Fmt.(list ~sep:comma string) vars)
    { t with stmt = Cin.foralls vars body }

(* -------------------------------------------------------------------- *)
(* map / accelerate (Table 2)                                            *)
(* -------------------------------------------------------------------- *)

(** [map_to t target backend func config] replaces the sub-statement
    structurally equal to [target] with a backend-specific computation
    strategy [func] (Table 2's [map] command). *)
let map_to t target backend func config =
  match
    Cin.replace_first ~target
      ~replacement:(Cin.Mapped { backend; func; config; body = target })
      t.stmt
  with
  | None -> err "map: target statement not found:@ %a" Cin.pp target
  | Some stmt' ->
      log
        (Fmt.str "map(%a, %a, %a)" Cin.pp target Cin.pp_backend backend
           Cin.pp_func func)
        { t with stmt = stmt' }

(** [accelerate t target backend func config] — the compound command of
    eq. (5).  With [~stage_inputs:true] every off-chip tensor read by
    [target] is first precomputed into an on-chip copy (a fresh [t_on]
    temporary) and the target rewritten to read the copies; the (rewritten)
    target is then mapped to [func].  With the default
    [~stage_inputs:false], staging is left to the automatic memory analysis
    (as in Figure 11, where the compiler stages C/D values itself) and the
    command degenerates to [map_to] — the form used to turn
    forall-accumulations into Spatial [Reduce] patterns (Figure 5). *)
let accelerate ?(stage_inputs = false) t target backend func config =
  if not (Cin.contains ~target t.stmt) then
    err "accelerate: target statement not found:@ %a" Cin.pp target;
  if not stage_inputs then
    log "accelerate(...)" (map_to t target backend func config)
  else begin
    let read = Cin.tensors_read target in
    let offchip =
      List.filter (fun n -> not (Format.is_on_chip (format_of t n))) read
    in
    (* Stage each off-chip input into an on-chip copy. *)
    let t', sub =
      List.fold_left
        (fun (t, sub) n ->
          let n_on = n ^ "_on" in
          if has_tensor t n_on then (t, sub)
          else
            let fmt_on = Format.on_chip (format_of t n) in
            (* Producer copies the tensor at the indices it is accessed
               with inside the target. *)
            let indices =
              match
                List.find_opt
                  (fun (a : Ast.access) -> a.tensor = n)
                  (List.concat_map
                     (fun (a : Ast.assign) -> Ast.accesses_of_expr a.Ast.rhs)
                     (Cin.assignments target))
              with
              | Some a -> a.indices
              | None -> err "accelerate: tensor %s not accessed in target" n
            in
            let t =
              precompute t (Ast.access n indices) indices indices (n_on, fmt_on)
            in
            (t, (n, n_on) :: sub))
        (t, []) offchip
    in
    let target' = Cin.subst_tensors target sub in
    log "accelerate(..., staged)" (map_to t' target' backend func config)
  end

(* -------------------------------------------------------------------- *)
(* Automatic passes                                                      *)
(* -------------------------------------------------------------------- *)

(** The automatic pass from section 5.2: single-element copy loops
    [forall i (t1(i) = t2(i))] between memory regions become bulk memory
    transfers ([Bulk_load] on-chip, [Bulk_store] off-chip). *)
let auto_bulk_transfers t =
  let rewritten = ref 0 in
  let stmt' =
    Cin.map_stmt
      (function
        | Cin.Forall
            {
              index;
              body =
                Cin.Assign
                  {
                    lhs = { tensor = dst; indices = [ i1 ] };
                    accum = false;
                    rhs = Ast.Access { tensor = src; indices = [ i2 ] };
                  } as body;
            }
          when i1 = index && i2 = index && has_tensor t dst && has_tensor t src ->
            let dst_on = Format.is_on_chip (format_of t dst) in
            let src_on = Format.is_on_chip (format_of t src) in
            if dst_on && not src_on then begin
              incr rewritten;
              Cin.Mapped { backend = Spatial; func = Bulk_load; config = None; body }
            end
            else if src_on && not dst_on then begin
              incr rewritten;
              Cin.Mapped { backend = Spatial; func = Bulk_store; config = None; body }
            end
            else Cin.Forall { index; body }
        | s -> s)
      t.stmt
  in
  if !rewritten = 0 then t
  else log (Fmt.str "auto_bulk_transfers: %d loops" !rewritten) { t with stmt = stmt' }

(* -------------------------------------------------------------------- *)
(* Validity                                                              *)
(* -------------------------------------------------------------------- *)

(** Index variables used by accesses but neither bound by a forall nor
    recoverable through split/fuse relations. *)
let unresolved_indices t =
  let bound = Cin.bound_vars t.stmt in
  let known = Relation.recoverable t.relations bound in
  Cin.unbound_indices t.stmt
  |> List.filter (fun (_, v) -> not (List.mem v known))

let is_valid t = unresolved_indices t = []

let pp ppf t =
  Fmt.pf ppf "@[<v>stmt: %a@,env: %a@,formats: %a@]" Cin.pp t.stmt
    Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
    t.environment
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string Format.pp_short))
    t.formats
