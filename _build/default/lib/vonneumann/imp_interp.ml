(** Interpreter for the imperative IR — executes the generated CPU kernel
    on real tensors and tallies its operation mix.

    The tally (loop iterations, loads/stores, floating-point operations,
    branches) is what the analytic CPU timing model consumes on inputs
    small enough to interpret; at paper scale the model derives the same
    quantities from the compilation plan's loop statistics. *)

module Tensor = Stardust_tensor.Tensor
module Format = Stardust_tensor.Format
module Plan = Stardust_core.Plan
module Compile = Stardust_core.Compile
open Imperative_ir

exception Interp_error of string

let err fmt = Fmt.kstr (fun s -> raise (Interp_error s)) fmt

type tally = {
  mutable iters : float;
  mutable loads : float;
  mutable stores : float;
  mutable flops : float;
  mutable branches : float;
}

let fresh_tally () =
  { iters = 0.; loads = 0.; stores = 0.; flops = 0.; branches = 0. }

type machine = {
  arrays : (string, float array) Hashtbl.t;
  tally : tally;
}

let arr m name =
  match Hashtbl.find_opt m.arrays name with
  | Some a -> a
  | None -> err "array %s not bound" name

let rec eval m env e =
  match e with
  | Const f -> f
  | Var v -> (
      match List.assoc_opt v env with
      | Some r -> !r
      | None -> err "variable %s unbound" v)
  | Idx (a, ix) ->
      let i = int_of_float (eval m env ix) in
      let a = arr m a in
      if i < 0 || i >= Array.length a then err "index %d out of bounds" i;
      m.tally.loads <- m.tally.loads +. 1.0;
      a.(i)
  | Bin (op, x, y) -> (
      let a = eval m env x and b = eval m env y in
      m.tally.flops <- m.tally.flops +. 1.0;
      match op with
      | `Add -> a +. b
      | `Sub -> a -. b
      | `Mul -> a *. b
      | `Div -> a /. b
      | `Min -> Float.min a b
      | `Max -> Float.max a b)
  | Neg x -> -.eval m env x
  | Cmp (r, x, y) -> (
      let a = eval m env x and b = eval m env y in
      m.tally.branches <- m.tally.branches +. 1.0;
      match r with
      | Lt -> if a < b then 1.0 else 0.0
      | Le -> if a <= b then 1.0 else 0.0
      | Eq -> if a = b then 1.0 else 0.0
      | Ne -> if a <> b then 1.0 else 0.0)
  | And (x, y) -> if eval m env x <> 0.0 && eval m env y <> 0.0 then 1.0 else 0.0
  | Or (x, y) -> if eval m env x <> 0.0 || eval m env y <> 0.0 then 1.0 else 0.0

let rec exec m env (s : stmt) =
  match s with
  | Comment _ -> env
  | Decl { var; init; _ } -> (var, ref (eval m env init)) :: env
  | Assign (v, e) -> (
      match List.assoc_opt v env with
      | Some r ->
          r := eval m env e;
          env
      | None -> err "assignment to undeclared %s" v)
  | Incr v -> (
      match List.assoc_opt v env with
      | Some r ->
          r := !r +. 1.0;
          env
      | None -> err "increment of undeclared %s" v)
  | Store { arr = a; idx; value; accum } ->
      let i = int_of_float (eval m env idx) in
      let a = arr m a in
      if i < 0 || i >= Array.length a then err "store index %d out of bounds" i;
      let v = eval m env value in
      m.tally.stores <- m.tally.stores +. 1.0;
      a.(i) <- (if accum then a.(i) +. v else v);
      env
  | For { var; lo; hi; body; _ } ->
      let lo = int_of_float (eval m env lo) and hi = int_of_float (eval m env hi) in
      for k = lo to hi - 1 do
        m.tally.iters <- m.tally.iters +. 1.0;
        ignore (exec_body m ((var, ref (float_of_int k)) :: env) body)
      done;
      env
  | While { cond; body } ->
      let guard = ref (eval m env cond <> 0.0) in
      while !guard do
        m.tally.iters <- m.tally.iters +. 1.0;
        ignore (exec_body m env body);
        guard := eval m env cond <> 0.0
      done;
      env
  | If { cond; then_; else_ } ->
      if eval m env cond <> 0.0 then ignore (exec_body m env then_)
      else ignore (exec_body m env else_);
      env

and exec_body m env body = List.fold_left (exec m) env body

(* -------------------------------------------------------------------- *)
(* Driving a compiled kernel                                             *)
(* -------------------------------------------------------------------- *)

let float_array_of_ints a = Array.map float_of_int a

(** Run the CPU lowering of a plan on concrete inputs.  Returns the result
    tensors and the operation tally. *)
let run (plan : Plan.t) ~(inputs : (string * Tensor.t) list) =
  let func = Cpu_lower.lower plan in
  let m = { arrays = Hashtbl.create 32; tally = fresh_tally () } in
  (* Allocate every declared array, then fill inputs. *)
  List.iter
    (fun (a : array_decl) ->
      Hashtbl.replace m.arrays a.aname (Array.make (max 1 a.length) 0.0))
    func.arrays;
  List.iter
    (fun (name, x) ->
      let fmt = Tensor.format x in
      let blit aname src =
        match Hashtbl.find_opt m.arrays aname with
        | Some d ->
            if Array.length src > Array.length d then
              err "input %s exceeds declared array size" aname;
            Array.blit src 0 d 0 (Array.length src)
        | None -> ()
      in
      for l = 0 to Tensor.order x - 1 do
        if Format.level_kind fmt l = Format.Compressed then begin
          blit (Cpu_lower.n_pos name l) (float_array_of_ints (Tensor.pos_array x l));
          blit (Cpu_lower.n_crd name l) (float_array_of_ints (Tensor.crd_array x l))
        end
      done;
      blit (Cpu_lower.n_vals name) (Tensor.vals_array x))
    inputs;
  (* Scalar results live in locals; give them array cells instead. *)
  ignore (exec_body m [] func.body);
  let read_result name =
    let meta = Plan.meta plan name in
    let fmt = { meta.Plan.fmt with Format.region = Format.Off_chip } in
    let dims = Array.to_list meta.Plan.dims in
    let n = List.length dims in
    let parent = ref 1 in
    let levels =
      Array.init n (fun l ->
          let d = meta.Plan.dims.(Format.dim_of_level fmt l) in
          match Format.level_kind fmt l with
          | Format.Dense ->
              parent := !parent * d;
              Tensor.Dense_level { dim = d }
          | Format.Compressed ->
              let pos_img = arr m (Cpu_lower.n_pos name l) in
              let pos = Array.init (!parent + 1) (fun i -> int_of_float pos_img.(i)) in
              let count = pos.(!parent) in
              let crd_img = arr m (Cpu_lower.n_crd name l) in
              let crd = Array.init count (fun i -> int_of_float crd_img.(i)) in
              parent := count;
              Tensor.Compressed_level { pos; crd })
    in
    let vals = Array.sub (arr m (Cpu_lower.n_vals name)) 0 !parent in
    Tensor.of_arrays ~name ~format:fmt ~dims ~levels ~vals
  in
  let results =
    List.filter_map
      (fun r ->
        let meta = Plan.meta plan r in
        if Format.is_on_chip meta.Plan.fmt then None
        else Some (r, read_result r))
      plan.Plan.results
  in
  (results, m.tally, func)
