(** Interpreter for scheduled concrete index notation.

    Executes a {!Stardust_schedule.Schedule.t} directly: foralls become
    counted loops over inferred extents, [where] nodes zero and run their
    producer before the consumer, temporaries live in hash tables, and
    split/fused variables are reconstructed through the schedule's
    relations.  This gives an executable semantics for CIN independent of
    any backend, used to check that scheduling transformations preserve
    meaning (scheduled CIN ≡ dense reference) before lowering. *)

module Tensor = Stardust_tensor.Tensor
module Coo = Stardust_tensor.Coo
module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
module Relation = Stardust_schedule.Relation
module Plan = Stardust_core.Plan

exception Interp_error of string

let err fmt = Fmt.kstr (fun s -> raise (Interp_error s)) fmt

type store = (int list, float) Hashtbl.t

type state = {
  sched : Schedule.t;
  inputs : (string * Tensor.t) list;
  written : (string, store) Hashtbl.t;  (** temporaries and results *)
  extents : (string * int) list;
}

(** Resolve the value of index variable [v] under [binding], reconstructing
    it through split/fuse relations when it is not directly bound.  Returns
    [None] when the reconstructed value falls outside the variable's extent
    (the tail guard of a stripmined loop). *)
let rec resolve st binding v =
  match List.assoc_opt v binding with
  | Some c -> Some c
  | None ->
      let rels = Schedule.relations st.sched in
      let value =
        List.find_map
          (fun r ->
            match r with
            | Relation.Split_up { parent; outer; inner; factor } when parent = v
              -> (
                match (resolve st binding outer, resolve st binding inner) with
                | Some o, Some i -> Some ((o * factor) + i)
                | _ -> None)
            | Relation.Split_down { parent; outer; inner; factor }
              when parent = v -> (
                let chunk =
                  match List.assoc_opt parent st.extents with
                  | Some n -> (n + factor - 1) / factor
                  | None -> err "split_down: unknown extent of %s" parent
                in
                match (resolve st binding outer, resolve st binding inner) with
                | Some o, Some i -> Some ((o * chunk) + i)
                | _ -> None)
            | Relation.Fused { outer; inner; fused } when outer = v -> (
                let inner_ext =
                  match
                    Relation.extent_of rels
                      (fun x -> List.assoc_opt x st.extents)
                      inner
                  with
                  | Some n -> n
                  | None -> err "fuse: unknown extent of %s" inner
                in
                match resolve st binding fused with
                | Some f -> Some (f / inner_ext)
                | None -> None)
            | Relation.Fused { outer = _; inner; fused } when inner = v -> (
                let inner_ext =
                  match
                    Relation.extent_of rels
                      (fun x -> List.assoc_opt x st.extents)
                      inner
                  with
                  | Some n -> n
                  | None -> err "fuse: unknown extent of %s" inner
                in
                match resolve st binding fused with
                | Some f -> Some (f mod inner_ext)
                | None -> None)
            | _ -> None)
          rels
      in
      (match value with
      | Some c -> (
          (* Guard against overshoot from constant-factor splitting. *)
          match List.assoc_opt v st.extents with
          | Some n when c >= n -> None
          | _ -> Some c)
      | None -> err "cannot resolve index variable %s" v)

let coords_of st binding indices =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | v :: rest -> (
        match resolve st binding v with
        | Some c -> go (c :: acc) rest
        | None -> None)
  in
  go [] indices

let read st binding (a : Ast.access) =
  match coords_of st binding a.indices with
  | None -> None
  | Some coords -> (
      match Hashtbl.find_opt st.written a.tensor with
      | Some store -> Some (Option.value ~default:0.0 (Hashtbl.find_opt store coords))
      | None -> (
          match List.assoc_opt a.tensor st.inputs with
          | Some t -> Some (Tensor.get t (Array.of_list coords))
          | None ->
              (* declared but never written nor supplied: all zeros *)
              if Schedule.has_tensor st.sched a.tensor then Some 0.0
              else err "unknown tensor %s" a.tensor))

(** Evaluate an expression; [None] when an index guard failed. *)
let rec eval st binding (e : Ast.expr) =
  match e with
  | Ast.Const f -> Some f
  | Ast.Neg e -> Option.map Float.neg (eval st binding e)
  | Ast.Bin (op, a, b) -> (
      match (eval st binding a, eval st binding b) with
      | Some x, Some y ->
          Some
            (match op with
            | Ast.Add -> x +. y
            | Ast.Sub -> x -. y
            | Ast.Mul -> x *. y)
      | _ -> None)
  | Ast.Access a -> read st binding a

let store_of st tensor =
  match Hashtbl.find_opt st.written tensor with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 64 in
      (* Accumulating into a pre-existing input starts from its values. *)
      (match List.assoc_opt tensor st.inputs with
      | Some t ->
          Tensor.iter_nonzeros (fun c v -> Hashtbl.replace s (Array.to_list c) v) t
      | None -> ());
      Hashtbl.add st.written tensor s;
      s

let exec_assign st binding (a : Ast.assign) =
  match (coords_of st binding a.lhs.Ast.indices, eval st binding a.Ast.rhs) with
  | Some coords, Some v ->
      let s = store_of st a.lhs.Ast.tensor in
      let old =
        if a.Ast.accum then Option.value ~default:0.0 (Hashtbl.find_opt s coords)
        else 0.0
      in
      Hashtbl.replace s coords (old +. v)
  | _ -> ()  (* guarded-out iteration *)

let rec exec st binding (s : Cin.stmt) =
  match s with
  | Cin.Assign a -> exec_assign st binding a
  | Cin.Forall { index; body } ->
      let n =
        match List.assoc_opt index st.extents with
        | Some n -> n
        | None -> err "no extent for loop variable %s" index
      in
      for c = 0 to n - 1 do
        exec st ((index, c) :: binding) body
      done
  | Cin.Where { consumer; producer } ->
      (* Temporaries written by the producer are zeroed on scope entry. *)
      List.iter
        (fun t ->
          if List.mem t (st.sched : Schedule.t).Schedule.temporaries then
            Hashtbl.replace st.written t (Hashtbl.create 16))
        (Cin.tensors_written producer);
      exec st binding producer;
      exec st binding consumer
  | Cin.Sequence l -> List.iter (exec st binding) l
  | Cin.Mapped { body; _ } -> exec st binding body

(** Run a scheduled statement over concrete inputs and extract the named
    result tensor in [result_format].  [result_dims] defaults to the dims
    inferred from the result's access indices. *)
let run (sched : Schedule.t) ~(inputs : (string * Tensor.t) list) ~result
    ~result_format =
  let stmt = Schedule.stmt sched in
  (* Extent inference mirrors the compiler's. *)
  let input_metas =
    List.map (fun (n, x) -> (n, Plan.meta_of_tensor x)) inputs
  in
  let extents = Plan.infer_extents sched input_metas stmt in
  let st = { sched; inputs; written = Hashtbl.create 8; extents } in
  exec st [] stmt;
  let store =
    match Hashtbl.find_opt st.written result with
    | Some s -> s
    | None -> Hashtbl.create 1
  in
  if Format.order result_format = 0 then
    Tensor.scalar ~name:result
      (Option.value ~default:0.0 (Hashtbl.find_opt store []))
  else begin
    let indices =
      match
        List.find_opt
          (fun (a : Ast.assign) -> a.Ast.lhs.Ast.tensor = result)
          (Cin.assignments stmt)
      with
      | Some a -> a.Ast.lhs.Ast.indices
      | None -> err "result %s is never assigned" result
    in
    let dims =
      List.map
        (fun v ->
          match List.assoc_opt v extents with
          | Some n -> n
          | None -> err "no extent for result index %s" v)
        indices
    in
    let coo = Coo.create (Array.of_list dims) in
    Hashtbl.iter
      (fun coords v -> if v <> 0.0 then Coo.add coo (Array.of_list coords) v)
      store;
    Tensor.of_coo ~name:result ~format:result_format coo
  end
