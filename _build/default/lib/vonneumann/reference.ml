(** Dense reference evaluator — the correctness oracle.

    Evaluates an index-notation assignment by brute force over the full
    (dense) iteration space.  Exponential in tensor order and meant only
    for small validation inputs; every backend (the CIN interpreter, the
    imperative CPU backend, and the Capstan simulator) is checked against
    this evaluator in the test suite. *)

module Tensor = Stardust_tensor.Tensor
module Coo = Stardust_tensor.Coo
module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast

exception Eval_error of string

let err fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

(** Index-variable extents inferred from the input tensors' dimensions. *)
let extents_of_assign (a : Ast.assign) ~(inputs : (string * Tensor.t) list) =
  let tbl = Hashtbl.create 16 in
  let scan (acc : Ast.access) =
    match List.assoc_opt acc.tensor inputs with
    | None -> ()
    | Some t ->
        List.iteri
          (fun d v ->
            let n = Tensor.dim t d in
            match Hashtbl.find_opt tbl v with
            | None -> Hashtbl.add tbl v n
            | Some n' when n' = n -> ()
            | Some n' -> err "conflicting extents for %s: %d vs %d" v n' n)
          acc.indices
  in
  scan a.lhs;
  List.iter scan (Ast.accesses_of_expr a.rhs);
  tbl

let rec eval_expr inputs binding (e : Ast.expr) =
  match e with
  | Ast.Const f -> f
  | Ast.Neg e -> -.eval_expr inputs binding e
  | Ast.Bin (op, a, b) -> (
      let x = eval_expr inputs binding a and y = eval_expr inputs binding b in
      match op with Ast.Add -> x +. y | Ast.Sub -> x -. y | Ast.Mul -> x *. y)
  | Ast.Access { tensor; indices } -> (
      match List.assoc_opt tensor inputs with
      | None -> err "unknown tensor %s" tensor
      | Some t ->
          let coords =
            Array.of_list
              (List.map
                 (fun v ->
                   match List.assoc_opt v binding with
                   | Some c -> c
                   | None -> err "unbound index %s" v)
                 indices)
          in
          Tensor.get t coords)

(** [eval a ~inputs ~result_format] computes the assignment densely and
    packs the result in [result_format].  The left-hand-side tensor need
    not exist in [inputs] (when it does and [a.accum] is set, its values
    are the starting point of the accumulation). *)
let eval (a : Ast.assign) ~(inputs : (string * Tensor.t) list) ~result_format =
  let extents = extents_of_assign a ~inputs in
  let extent v =
    match Hashtbl.find_opt extents v with
    | Some n -> n
    | None -> err "cannot infer extent of %s" v
  in
  let out_vars = a.lhs.Ast.indices in
  let red_vars = Ast.reduction_vars a in
  (* Standard index-notation semantics: the implicit summation over a
     reduction variable binds only the additive terms that mention it
     (e.g. in [y(i) = b(i) - A(i,j)*x(j)], [b] is added once, not once per
     [j]).  Split the right-hand side accordingly. *)
  let red_terms, plain_terms =
    List.partition
      (fun (_, t) ->
        List.exists (fun v -> List.mem v red_vars) (Ast.indices_of_expr t))
      (Ast.linear_terms a.Ast.rhs)
  in
  let red_expr = Ast.of_linear_terms red_terms in
  let plain_expr = Ast.of_linear_terms plain_terms in
  let cell binding =
    let acc = ref (if plain_terms = [] then 0.0 else eval_expr inputs binding plain_expr) in
    if red_terms <> [] then begin
      let rec inner binding = function
        | [] -> acc := !acc +. eval_expr inputs binding red_expr
        | v :: rest ->
            for c = 0 to extent v - 1 do
              inner ((v, c) :: binding) rest
            done
      in
      inner binding red_vars
    end;
    !acc
  in
  if out_vars = [] then Tensor.scalar ~name:a.lhs.Ast.tensor (cell [])
  else begin
    let dims = List.map extent out_vars in
    let coo = Coo.create (Array.of_list dims) in
    let rec outer binding = function
      | [] ->
          let acc = ref (cell binding) in
          (match (a.Ast.accum, List.assoc_opt a.lhs.Ast.tensor inputs) with
          | true, Some prev ->
              let coords =
                Array.of_list (List.map (fun v -> List.assoc v binding) out_vars)
              in
              acc := !acc +. Tensor.get prev coords
          | _ -> ());
          if !acc <> 0.0 then
            Coo.add coo
              (Array.of_list (List.map (fun v -> List.assoc v binding) out_vars))
              !acc
      | v :: rest ->
          for c = 0 to extent v - 1 do
            outer ((v, c) :: binding) rest
          done
    in
    outer [] out_vars;
    Tensor.of_coo ~name:a.lhs.Ast.tensor ~format:result_format coo
  end
