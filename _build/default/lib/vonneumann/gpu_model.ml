(** Analytic GPU timing model — the V100 baseline.

    The paper's GPU baseline is TACO's CUDA backend on a V100 (p3.2xlarge),
    data-transfer time excluded, cold cache, single iteration.  The model
    charges the mechanisms that shape TACO-GPU performance in Table 6:

    - TACO does not support sparse outputs on GPUs, so the result tensor is
      {e fully dense} in device memory and the generated kernel first
      zero-initialises it with a generated (strided, uncoalesced) loop far
      below memcpy bandwidth — this single mechanism produces SDDMM's
      four-orders-of-magnitude slowdown (a 49702^2 dense output);
    - assembling values into that dense image from sparse iteration is a
      scatter with atomic/uncoalesced writes (slow per element), while
      fully dense outputs are written coalesced (free beyond bandwidth);
    - coalesced position loops stream near memory bandwidth (SpMV is only
      ~3x behind Capstan), but two-way merge while-loops diverge within
      warps and run orders of magnitude slower;
    - gathers run at the device's random-access rate.

    Constants are calibrated once against the paper's GPU-vs-Capstan
    geomean (see EXPERIMENTS.md). *)

type params = {
  stream_iter_rate : float;  (** coalesced position-loop iterations / s *)
  merge_iter_rate : float;  (** divergent merge while-loop iterations / s *)
  dense_iter_rate : float;  (** dense innermost iterations / s *)
  gather_hot_rate : float;  (** random accesses into L2-resident tables / s *)
  gather_cold_rate : float;  (** random accesses missing to device DRAM / s *)
  scatter_hot_rate : float;  (** scatters into an L2-resident output image / s *)
  scatter_cold_rate : float;  (** scatters missing to device DRAM / s *)
  l2_bytes : float;
  mem_bw_bytes_per_s : float;  (** streaming bandwidth *)
  init_bw_bytes_per_s : float;
      (** effective bandwidth of TACO's generated zero-initialisation *)
  launch_seconds : float;  (** fixed kernel-launch overhead *)
}

let v100 =
  {
    stream_iter_rate = 40.0e9;
    merge_iter_rate = 4.0e9;
    dense_iter_rate = 200.0e9;
    gather_hot_rate = 40.0e9;
    gather_cold_rate = 2.0e9;
    scatter_hot_rate = 2.0e9;
    scatter_cold_rate = 40.0e6;
    l2_bytes = 6.0e6;
    mem_bw_bytes_per_s = 800.0e9;
    init_bw_bytes_per_s = 8.0e9;
    launch_seconds = 8.0e-6;
  }

type report = {
  seconds : float;
  init_seconds : float;
  compute_seconds : float;
  scatter_seconds : float;
  mem_seconds : float;
}

(** Time to run the kernel whose workload profile is [p].  The dense-output
    initialisation uses [output_dense_words] — the full dense image of the
    result — independent of how sparse the result actually is. *)
let run ?(params = v100) (p : Profile.t) =
  let init_seconds =
    4.0 *. p.Profile.output_dense_words /. params.init_bw_bytes_per_s
  in
  let sparse_output =
    (* fully dense results have output_words = dense image *)
    p.Profile.output_words < p.Profile.output_dense_words -. 0.5
  in
  let scatter_seconds =
    if not sparse_output then 0.0
    else
      let rate =
        if 4.0 *. p.Profile.output_dense_words <= params.l2_bytes then
          params.scatter_hot_rate
        else params.scatter_cold_rate
      in
      p.Profile.output_appends /. rate
  in
  let gather_seconds =
    List.fold_left
      (fun acc (g : Profile.gather) ->
        let rate =
          if g.Profile.table_bytes <= params.l2_bytes then
            params.gather_hot_rate
          else params.gather_cold_rate
        in
        acc +. (g.Profile.count /. rate))
      0.0 p.Profile.gathers
  in
  let compute_seconds =
    (p.Profile.pos_iters /. params.stream_iter_rate)
    +. (Profile.merge_iters p /. params.merge_iter_rate)
    +. (p.Profile.dense_inner_iters /. params.dense_iter_rate)
    +. gather_seconds
  in
  let mem_seconds =
    (p.Profile.input_bytes +. (4.0 *. p.Profile.output_dense_words))
    /. params.mem_bw_bytes_per_s
  in
  let seconds =
    params.launch_seconds +. init_seconds +. scatter_seconds
    +. Float.max compute_seconds mem_seconds
  in
  { seconds; init_seconds; compute_seconds; scatter_seconds; mem_seconds }
