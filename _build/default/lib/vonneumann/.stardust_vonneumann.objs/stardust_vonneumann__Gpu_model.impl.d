lib/vonneumann/gpu_model.pp.ml: Float List Profile
