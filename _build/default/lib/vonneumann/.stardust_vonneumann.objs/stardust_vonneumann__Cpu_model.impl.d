lib/vonneumann/cpu_model.pp.ml: Float List Profile
