lib/vonneumann/reference.pp.ml: Array Fmt Hashtbl List Stardust_ir Stardust_tensor
