lib/vonneumann/cin_interp.pp.ml: Array Float Fmt Hashtbl List Option Stardust_core Stardust_ir Stardust_schedule Stardust_tensor
