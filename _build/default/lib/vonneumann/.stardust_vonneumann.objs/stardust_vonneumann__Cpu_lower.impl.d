lib/vonneumann/cpu_lower.pp.ml: Array Fmt Imperative_ir List Printf Stardust_core Stardust_ir Stardust_schedule Stardust_tensor
