lib/vonneumann/imperative_ir.pp.ml: Float Fmt List Ppx_deriving_runtime Printf String
