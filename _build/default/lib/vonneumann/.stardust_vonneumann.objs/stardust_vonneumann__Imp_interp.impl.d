lib/vonneumann/imp_interp.pp.ml: Array Cpu_lower Float Fmt Hashtbl Imperative_ir List Stardust_core Stardust_tensor
