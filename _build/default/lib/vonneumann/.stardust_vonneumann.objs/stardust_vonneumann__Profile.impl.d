lib/vonneumann/profile.pp.ml: Array Float Fmt Hashtbl List Stardust_core Stardust_ir Stardust_schedule Stardust_tensor
