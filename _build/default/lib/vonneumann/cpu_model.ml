(** Analytic CPU timing model — the 128-thread Xeon baseline.

    The paper profiles TACO-generated C on a four-socket Xeon E7-8890 v3
    (128 threads, 2494 MHz), cold cache, single iteration.  We model that
    machine analytically:

    - position-loop iterations (pointer-bump traversal of one compressed
      fiber) cost a few cycles each;
    - two-way merge iterations (the while-loops TACO emits for unions)
      are branch-heavy and cost substantially more;
    - innermost dense iterations vectorize (AVX2) and cost a fraction of
      a cycle;
    - gathers (random reads at sparse coordinates) are priced by the
      residency of the gathered table: a kilobyte-scale vector stays in
      cache, while row-gathers from multi-megabyte factor matrices miss
      all the way to (cold) DRAM, paying per cache line with limited
      memory-level parallelism;
    - sparse output assembly appends element-at-a-time;
    - TACO parallelizes only kernels whose outermost loop is a dense
      forall, whose outputs are dense, and which use no workspace — of
      the paper's ten kernels, only SpMV (see {!Profile}); even then
      four-socket scaling on an irregular kernel is far below 128x.

    Constants are calibrated once (see EXPERIMENTS.md) against the paper's
    reported CPU-vs-Capstan geomean; they are in the range of published
    Xeon measurements, not fitted per kernel. *)

type params = {
  freq_hz : float;
  threads : int;
  thread_eff : float;  (** parallel efficiency on sparse kernels *)
  cycles_per_pos_iter : float;  (** compressed position-loop iteration *)
  cycles_per_and_merge : float;  (** intersection merge iteration *)
  cycles_per_or_merge : float;  (** union merge iteration *)
  cycles_per_dense_iter : float;  (** vectorized dense iteration *)
  cycles_per_append : float;  (** sparse output element append *)
  cycles_per_hot_gather : float;  (** gather from a cache-resident table *)
  cycles_per_cold_line : float;
      (** per cache line of a cold gather (latency / achievable MLP) *)
  hot_table_bytes : float;  (** residency threshold *)
  line_bytes : float;
  mem_bw_bytes_per_s : float;  (** aggregate cold-cache bandwidth *)
}

let xeon_e7_8890_v3 =
  {
    freq_hz = 2.494e9;
    threads = 128;
    thread_eff = 0.11;
    cycles_per_pos_iter = 9.0;
    cycles_per_and_merge = 12.0;
    cycles_per_or_merge = 22.0;
    cycles_per_dense_iter = 0.6;
    cycles_per_append = 25.0;
    cycles_per_hot_gather = 7.0;
    cycles_per_cold_line = 60.0;
    hot_table_bytes = 4.0e6;
    line_bytes = 64.0;
    mem_bw_bytes_per_s = 120.0e9;
  }

type report = {
  seconds : float;
  work_seconds : float;
  mem_seconds : float;
  effective_threads : float;
}

let gather_cycles params (g : Profile.gather) =
  if g.Profile.table_bytes <= params.hot_table_bytes then
    g.Profile.count *. params.cycles_per_hot_gather
  else
    let lines =
      Float.max 1.0 (Float.of_int g.Profile.words_each *. 8.0 /. params.line_bytes)
    in
    g.Profile.count *. lines *. params.cycles_per_cold_line

(** Time to run the kernel whose workload profile is [p]. *)
let run ?(params = xeon_e7_8890_v3) (p : Profile.t) =
  let effective_threads =
    if p.Profile.parallel_outer then
      Float.max 1.0 (float_of_int params.threads *. params.thread_eff)
    else 1.0
  in
  let cycles =
    (p.Profile.pos_iters *. params.cycles_per_pos_iter)
    +. (p.Profile.merge_and_iters *. params.cycles_per_and_merge)
    +. (p.Profile.merge_or_iters *. params.cycles_per_or_merge)
    +. (p.Profile.dense_inner_iters *. params.cycles_per_dense_iter)
    +. (p.Profile.output_appends *. params.cycles_per_append)
    +. List.fold_left (fun a g -> a +. gather_cycles params g) 0.0 p.Profile.gathers
  in
  let work_seconds = cycles /. params.freq_hz /. effective_threads in
  let bytes = p.Profile.input_bytes +. (8.0 *. p.Profile.output_words) in
  let mem_seconds = bytes /. params.mem_bw_bytes_per_s in
  {
    seconds = Float.max work_seconds mem_seconds;
    work_seconds;
    mem_seconds;
    effective_threads;
  }
