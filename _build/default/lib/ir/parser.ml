(** A recursive-descent parser for tensor index notation.

    Grammar (whitespace-insensitive):
    {v
      assign  ::= access ("=" | "+=") expr
      expr    ::= term (("+" | "-") term)*
      term    ::= factor ("*" factor)*
      factor  ::= number | access | "(" expr ")" | "-" factor
      access  ::= ident [ "(" ident ("," ident)* ")" ]
    v}

    Example: [parse_assign "A(i,j) = B(i,j) * C(i,k) * D(k,j)"]. *)

exception Parse_error of string * int  (** message, character offset *)

type token =
  | IDENT of string
  | NUMBER of float
  | LPAREN
  | RPAREN
  | COMMA
  | PLUS
  | MINUS
  | STAR
  | EQ
  | PLUSEQ
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | NUMBER f -> Fmt.pf ppf "number %g" f
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | EQ -> Fmt.string ppf "'='"
  | PLUSEQ -> Fmt.string ppf "'+='"
  | EOF -> Fmt.string ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

(** Tokenise the whole input; each token carries its start offset. *)
let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let emit t off = toks := (t, off) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      emit (IDENT (String.sub s start (!i - start))) start
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E'
           || ((s.[!i] = '+' || s.[!i] = '-')
              && !i > start
              && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      match float_of_string_opt text with
      | Some f -> emit (NUMBER f) start
      | None -> raise (Parse_error (Printf.sprintf "bad number %S" text, start))
    end
    else begin
      let start = !i in
      (match c with
      | '(' -> emit LPAREN start; incr i
      | ')' -> emit RPAREN start; incr i
      | ',' -> emit COMMA start; incr i
      | '+' ->
          if !i + 1 < n && s.[!i + 1] = '=' then (emit PLUSEQ start; i := !i + 2)
          else (emit PLUS start; incr i)
      | '-' -> emit MINUS start; incr i
      | '*' -> emit STAR start; incr i
      | '=' -> emit EQ start; incr i
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c, start)))
    end
  done;
  emit EOF n;
  Array.of_list (List.rev !toks)

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let offset st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st t =
  if peek st = t then advance st
  else
    raise
      (Parse_error
         (Fmt.str "expected %a but found %a" pp_token t pp_token (peek st),
          offset st))

let parse_ident st =
  match peek st with
  | IDENT s -> advance st; s
  | t -> raise (Parse_error (Fmt.str "expected identifier, found %a" pp_token t, offset st))

let parse_access st : Ast.access =
  let tensor = parse_ident st in
  if peek st = LPAREN then begin
    advance st;
    let rec indices acc =
      let i = parse_ident st in
      match peek st with
      | COMMA -> advance st; indices (i :: acc)
      | RPAREN -> advance st; List.rev (i :: acc)
      | t ->
          raise
            (Parse_error (Fmt.str "expected ',' or ')', found %a" pp_token t, offset st))
    in
    { tensor; indices = indices [] }
  end
  else { tensor; indices = [] }

let rec parse_expr st : Ast.expr =
  let lhs = parse_term st in
  let rec loop lhs =
    match peek st with
    | PLUS -> advance st; loop (Ast.Bin (Ast.Add, lhs, parse_term st))
    | MINUS -> advance st; loop (Ast.Bin (Ast.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop lhs =
    match peek st with
    | STAR -> advance st; loop (Ast.Bin (Ast.Mul, lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st =
  match peek st with
  | NUMBER f -> advance st; Ast.Const f
  | MINUS -> advance st; Ast.Neg (parse_factor st)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | IDENT _ -> Ast.Access (parse_access st)
  | t -> raise (Parse_error (Fmt.str "expected expression, found %a" pp_token t, offset st))

(** Parse a full assignment statement, e.g. ["y(i) += A(i,j) * x(j)"]. *)
let parse_assign s : Ast.assign =
  let st = { toks = tokenize s; pos = 0 } in
  let lhs = parse_access st in
  let accum =
    match peek st with
    | EQ -> advance st; false
    | PLUSEQ -> advance st; true
    | t ->
        raise (Parse_error (Fmt.str "expected '=' or '+=', found %a" pp_token t, offset st))
  in
  let rhs = parse_expr st in
  expect st EOF;
  { Ast.lhs; accum; rhs }

(** Parse just an expression (no assignment). *)
let parse_expr_string s : Ast.expr =
  let st = { toks = tokenize s; pos = 0 } in
  let e = parse_expr st in
  expect st EOF;
  e

let parse_assign_opt s = try Some (parse_assign s) with Parse_error _ -> None
