(** Concrete index notation (CIN) — the scheduling IR of Stardust
    (Kjolstad et al. [CGO'19], Figure 2 of the paper).

    CIN makes the iteration structure of an index-notation assignment
    explicit: [forall] nodes give loop order, [where] nodes introduce
    temporaries (producer on the right, consumer on the left), and
    [sequence] nodes order statements.  Stardust extends CIN with [mapped]
    nodes, which replace a sub-statement with a backend-specific function
    (section 5.2). *)

type backend = Spatial | Cpu | Custom_backend of string
[@@deriving show { with_path = false }, eq, ord]

(** Backend functions a statement may be mapped to via [map]/[accelerate].
    [Reduction] is Spatial's [Reduce] pattern (Capstan's PCU reduction
    tree); [Bulk_load]/[Bulk_store] are DRAM<->SRAM burst transfers. *)
type mapped_func =
  | Reduction
  | Bulk_load
  | Bulk_store
  | Custom_func of string
[@@deriving show { with_path = false }, eq, ord]

(** Configuration constants may be literal or refer to an [environment]
    variable (e.g. [innerPar] in Figure 5). *)
type config = Cint of int | Cvar of string
[@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Assign of Ast.assign
  | Forall of { index : Ast.index_var; body : stmt }
  | Where of { consumer : stmt; producer : stmt }
  | Sequence of stmt list
  | Mapped of {
      backend : backend;
      func : mapped_func;
      config : config option;
      body : stmt;  (** the statement whose semantics the function realises *)
    }
[@@deriving show { with_path = false }, eq, ord]

(* -------------------------------------------------------------------- *)
(* Construction                                                          *)
(* -------------------------------------------------------------------- *)

let forall index body = Forall { index; body }
let foralls indices body = List.fold_right forall indices body
let where consumer producer = Where { consumer; producer }

(** [concretize a] is the canonical CIN of an index-notation assignment:
    foralls over the result variables (in left-hand-side order) then the
    reduction variables (in appearance order), wrapping the assignment with
    [+=] when reductions are present. *)
let concretize (a : Ast.assign) =
  let rvars = Ast.reduction_vars a in
  let body = Assign { a with accum = a.accum || rvars <> [] } in
  foralls (a.lhs.indices @ rvars) body

(* -------------------------------------------------------------------- *)
(* Traversal                                                             *)
(* -------------------------------------------------------------------- *)

let rec fold f acc s =
  let acc = f acc s in
  match s with
  | Assign _ -> acc
  | Forall { body; _ } -> fold f acc body
  | Where { consumer; producer } -> fold f (fold f acc consumer) producer
  | Sequence l -> List.fold_left (fold f) acc l
  | Mapped { body; _ } -> fold f acc body

(** [map_stmt f s] rebuilds [s] bottom-up, applying [f] to every node. *)
let rec map_stmt f s =
  let s' =
    match s with
    | Assign _ -> s
    | Forall r -> Forall { r with body = map_stmt f r.body }
    | Where { consumer; producer } ->
        Where { consumer = map_stmt f consumer; producer = map_stmt f producer }
    | Sequence l -> Sequence (List.map (map_stmt f) l)
    | Mapped r -> Mapped { r with body = map_stmt f r.body }
  in
  f s'

(** Replace the first sub-statement structurally equal to [target] with
    [replacement].  Returns [None] when no match exists. *)
let replace_first ~target ~replacement s =
  let found = ref false in
  let rec go s =
    if (not !found) && equal_stmt s target then (
      found := true;
      replacement)
    else
      match s with
      | Assign _ -> s
      | Forall r -> Forall { r with body = go r.body }
      | Where { consumer; producer } ->
          let consumer = go consumer in
          let producer = go producer in
          Where { consumer; producer }
      | Sequence l -> Sequence (List.map go l)
      | Mapped r -> Mapped { r with body = go r.body }
  in
  let s' = go s in
  if !found then Some s' else None

let contains ~target s = fold (fun acc n -> acc || equal_stmt n target) false s

(* -------------------------------------------------------------------- *)
(* Queries                                                               *)
(* -------------------------------------------------------------------- *)

(** Index variables bound by foralls, outermost first (duplicates removed). *)
let bound_vars s =
  let l =
    fold (fun acc n -> match n with Forall { index; _ } -> index :: acc | _ -> acc) [] s
  in
  List.rev l |> List.fold_left (fun acc i -> if List.mem i acc then acc else acc @ [ i ]) []

(** All assignments in the statement, left-to-right. *)
let assignments s =
  List.rev (fold (fun acc n -> match n with Assign a -> a :: acc | _ -> acc) [] s)

(** Tensors read anywhere in the statement (no duplicates). *)
let tensors_read s =
  List.concat_map (fun (a : Ast.assign) -> Ast.tensors_of_expr a.rhs) (assignments s)
  |> List.fold_left (fun acc t -> if List.mem t acc then acc else acc @ [ t ]) []

(** Tensors written anywhere in the statement (no duplicates). *)
let tensors_written s =
  List.map (fun (a : Ast.assign) -> a.lhs.tensor) (assignments s)
  |> List.fold_left (fun acc t -> if List.mem t acc then acc else acc @ [ t ]) []

let all_tensors s =
  tensors_written s @ tensors_read s
  |> List.fold_left (fun acc t -> if List.mem t acc then acc else acc @ [ t ]) []

(** Rename tensors throughout (used by [accelerate] to swap in on-chip
    temporaries). *)
let rec subst_tensors s sub =
  match s with
  | Assign a ->
      let lhs =
        match List.assoc_opt a.lhs.tensor sub with
        | Some t' -> { a.lhs with tensor = t' }
        | None -> a.lhs
      in
      Assign { a with lhs; rhs = Ast.subst_tensors a.rhs sub }
  | Forall r -> Forall { r with body = subst_tensors r.body sub }
  | Where { consumer; producer } ->
      Where { consumer = subst_tensors consumer sub; producer = subst_tensors producer sub }
  | Sequence l -> Sequence (List.map (fun s -> subst_tensors s sub) l)
  | Mapped r -> Mapped { r with body = subst_tensors r.body sub }

(** Rename index variables throughout. *)
let rec subst_indices s sub =
  match s with
  | Assign a ->
      let ren i = match List.assoc_opt i sub with Some j -> j | None -> i in
      Assign
        {
          a with
          lhs = { a.lhs with indices = List.map ren a.lhs.indices };
          rhs = Ast.subst_indices a.rhs sub;
        }
  | Forall r ->
      let index =
        match List.assoc_opt r.index sub with Some j -> j | None -> r.index
      in
      Forall { index; body = subst_indices r.body sub }
  | Where { consumer; producer } ->
      Where { consumer = subst_indices consumer sub; producer = subst_indices producer sub }
  | Sequence l -> Sequence (List.map (fun s -> subst_indices s sub) l)
  | Mapped r -> Mapped { r with body = subst_indices r.body sub }

(* -------------------------------------------------------------------- *)
(* Well-formedness                                                       *)
(* -------------------------------------------------------------------- *)

(** Check that every index variable used in an access is bound by an
    enclosing forall.  Returns the list of violations (empty = valid). *)
let unbound_indices s =
  let errs = ref [] in
  let rec go bound s =
    match s with
    | Assign a ->
        let check (acc : Ast.access) =
          List.iter
            (fun i -> if not (List.mem i bound) then errs := (acc.tensor, i) :: !errs)
            acc.indices
        in
        check a.lhs;
        List.iter check (Ast.accesses_of_expr a.rhs)
    | Forall { index; body } -> go (index :: bound) body
    | Where { consumer; producer } -> go bound consumer; go bound producer
    | Sequence l -> List.iter (go bound) l
    | Mapped { body; _ } -> go bound body
  in
  go [] s;
  List.rev !errs

let is_well_formed s = unbound_indices s = []

(* -------------------------------------------------------------------- *)
(* Pretty printing (paper-style notation)                                *)
(* -------------------------------------------------------------------- *)

let pp_backend ppf = function
  | Spatial -> Fmt.string ppf "Spatial"
  | Cpu -> Fmt.string ppf "CPU"
  | Custom_backend s -> Fmt.string ppf s

let pp_func ppf = function
  | Reduction -> Fmt.string ppf "Reduce"
  | Bulk_load -> Fmt.string ppf "BulkLoad"
  | Bulk_store -> Fmt.string ppf "BulkStore"
  | Custom_func s -> Fmt.string ppf s

let rec pp ppf s =
  match s with
  | Assign a -> Ast.pp_assign ppf a
  | Forall { index; body } -> Fmt.pf ppf "forall(%s) %a" index pp body
  | Where { consumer; producer } ->
      Fmt.pf ppf "@[<v>(%a@, where %a)@]" pp consumer pp producer
  | Sequence l -> Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any ";@,") pp) l
  | Mapped { backend; func; config; body } ->
      Fmt.pf ppf "map[%a.%a%a](%a)" pp_backend backend pp_func func
        Fmt.(
          option (fun ppf -> function
            | Cint c -> Fmt.pf ppf ", %d" c
            | Cvar v -> Fmt.pf ppf ", %s" v))
        config pp body

let to_string s = Fmt.str "%a" pp s
