(** Tensor index notation — the algorithm language of Stardust.

    An assignment such as [A(i,j) = B(i,j) * C(i,k) * D(k,j)] names the
    computation only; how it is stored (formats) and executed (schedules) is
    specified separately.  Index variables appearing on the right-hand side
    but not on the left are reduction (summation) variables. *)

type index_var = string [@@deriving show { with_path = false }, eq, ord]

type access = {
  tensor : string;
  indices : index_var list;  (** logical-dimension order *)
}
[@@deriving show { with_path = false }, eq, ord]

type binop = Add | Sub | Mul [@@deriving show { with_path = false }, eq, ord]

type expr =
  | Access of access
  | Const of float
  | Neg of expr
  | Bin of binop * expr * expr
[@@deriving show { with_path = false }, eq, ord]

type assign = {
  lhs : access;
  accum : bool;  (** [true] for [+=] *)
  rhs : expr;
}
[@@deriving show { with_path = false }, eq, ord]

(* -------------------------------------------------------------------- *)
(* Constructors (an OCaml-embedded eDSL mirroring the C++ API of Fig. 5) *)
(* -------------------------------------------------------------------- *)

let access tensor indices = Access { tensor; indices }
let const f = Const f
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let neg a = Neg a
let assign lhs rhs = { lhs; accum = false; rhs }
let accum lhs rhs = { lhs; accum = true; rhs }

(* -------------------------------------------------------------------- *)
(* Queries                                                               *)
(* -------------------------------------------------------------------- *)

let rec accesses_of_expr = function
  | Access a -> [ a ]
  | Const _ -> []
  | Neg e -> accesses_of_expr e
  | Bin (_, a, b) -> accesses_of_expr a @ accesses_of_expr b

(** Tensor names read by an expression, in order of first appearance,
    without duplicates. *)
let tensors_of_expr e =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (a : access) ->
      if Hashtbl.mem seen a.tensor then None
      else (
        Hashtbl.add seen a.tensor ();
        Some a.tensor))
    (accesses_of_expr e)

(** Index variables of an expression, in order of first appearance. *)
let indices_of_expr e =
  let seen = Hashtbl.create 8 in
  List.concat_map (fun (a : access) -> a.indices) (accesses_of_expr e)
  |> List.filter (fun i ->
         if Hashtbl.mem seen i then false
         else (
           Hashtbl.add seen i ();
           true))

(** Reduction variables: on the right-hand side but not the left. *)
let reduction_vars (a : assign) =
  List.filter (fun i -> not (List.mem i a.lhs.indices)) (indices_of_expr a.rhs)

(** Flatten the top-level additive structure of an expression into signed
    terms: [a - b + c] becomes [[(false, a); (true, b); (false, c)]]. *)
let rec linear_terms ?(negated = false) = function
  | Bin (Add, a, b) -> linear_terms ~negated a @ linear_terms ~negated b
  | Bin (Sub, a, b) -> linear_terms ~negated a @ linear_terms ~negated:(not negated) b
  | Neg e -> linear_terms ~negated:(not negated) e
  | e -> [ (negated, e) ]

(** Rebuild an expression from signed terms. *)
let of_linear_terms = function
  | [] -> Const 0.0
  | (s0, t0) :: rest ->
      List.fold_left
        (fun acc (s, t) -> if s then Bin (Sub, acc, t) else Bin (Add, acc, t))
        (if s0 then Neg t0 else t0)
        rest

(** All index variables of an assignment: result variables in left-hand-side
    order followed by reduction variables in appearance order. *)
let all_vars (a : assign) = a.lhs.indices @ reduction_vars a

(** Substitute index variables in an expression: [subst_indices e s] renames
    every occurrence of [i] to [List.assoc i s] (when bound). *)
let rec subst_indices e s =
  match e with
  | Access a ->
      Access
        {
          a with
          indices =
            List.map
              (fun i -> match List.assoc_opt i s with Some j -> j | None -> i)
              a.indices;
        }
  | Const _ -> e
  | Neg e' -> Neg (subst_indices e' s)
  | Bin (op, a, b) -> Bin (op, subst_indices a s, subst_indices b s)

(** Substitute tensor names: rename every access to [t] as [List.assoc t s]. *)
let rec subst_tensors e s =
  match e with
  | Access a -> (
      match List.assoc_opt a.tensor s with
      | Some t' -> Access { a with tensor = t' }
      | None -> e)
  | Const _ -> e
  | Neg e' -> Neg (subst_tensors e' s)
  | Bin (op, a, b) -> Bin (op, subst_tensors a s, subst_tensors b s)

(* -------------------------------------------------------------------- *)
(* Pretty printing                                                       *)
(* -------------------------------------------------------------------- *)

let pp_access ppf (a : access) =
  if a.indices = [] then Fmt.string ppf a.tensor
  else
    Fmt.pf ppf "%s(%a)" a.tensor
      Fmt.(list ~sep:(any ", ") string)
      a.indices

let rec pp_expr ppf = function
  | Access a -> pp_access ppf a
  | Const f -> Fmt.float ppf f
  | Neg e -> Fmt.pf ppf "-%a" pp_factor e
  | Bin (Add, a, b) -> Fmt.pf ppf "%a + %a" pp_expr a pp_expr b
  | Bin (Sub, a, b) -> Fmt.pf ppf "%a - %a" pp_expr a pp_factor b
  | Bin (Mul, a, b) -> Fmt.pf ppf "%a * %a" pp_factor a pp_factor b

and pp_factor ppf = function
  | Bin ((Add | Sub), _, _) as e -> Fmt.pf ppf "(%a)" pp_expr e
  | e -> pp_expr ppf e

let pp_assign ppf (a : assign) =
  Fmt.pf ppf "%a %s %a" pp_access a.lhs
    (if a.accum then "+=" else "=")
    pp_expr a.rhs

let expr_to_string e = Fmt.str "%a" pp_expr e
let assign_to_string a = Fmt.str "%a" pp_assign a
