lib/ir/parser.pp.ml: Array Ast Fmt List Printf String
