lib/ir/cin.pp.ml: Ast Fmt List Ppx_deriving_runtime
