lib/ir/ast.pp.ml: Fmt Hashtbl List Ppx_deriving_runtime
