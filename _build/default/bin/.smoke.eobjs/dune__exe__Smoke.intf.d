bin/smoke.mli:
