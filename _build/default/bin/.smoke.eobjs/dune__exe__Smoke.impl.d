bin/smoke.ml: Float Fmt List Option Printexc Printf Stardust_capstan Stardust_core Stardust_ir Stardust_schedule Stardust_tensor Stardust_vonneumann Stardust_workloads
