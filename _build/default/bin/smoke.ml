(* Development smoke test: every paper kernel end-to-end on small data.
   For each kernel stage: compile, functionally simulate on Capstan,
   compare against the dense reference evaluator and the CIN interpreter,
   and check that the analytic estimate matches the executed tallies. *)
module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module S = Stardust_schedule.Schedule
module C = Stardust_core.Compile
module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module Ref = Stardust_vonneumann.Reference
module Interp = Stardust_vonneumann.Cin_interp
module D = Stardust_workloads.Datasets
module Imp = Stardust_vonneumann.Imp_interp

let sp ?(seed = 42) name format dims density =
  D.small_random ~seed ~name ~format ~dims ~density ()

let small_inputs : (string * (string * T.t) list) list =
  [
    ("SpMV", [ ("A", sp "A" (F.csr ()) [ 8; 10 ] 0.3);
               ("x", D.dense_vector ~name:"x" ~dim:10 ()) ]);
    ("Plus3",
      [ ("B", sp ~seed:1 "B" (F.csr ()) [ 8; 10 ] 0.3);
        ("C", sp ~seed:2 "C" (F.csr ()) [ 8; 10 ] 0.3);
        ("D", sp ~seed:3 "D" (F.csr ()) [ 8; 10 ] 0.3) ]);
    ("SDDMM",
      [ ("B", sp "B" (F.csr ()) [ 6; 7 ] 0.35);
        ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:6 ~cols:5 ());
        ("D", D.dense_matrix ~seed:5 ~name:"D" ~format:(F.rm ()) ~rows:7 ~cols:5 ()) ]);
    ("MatTransMul",
      [ ("A", sp "A" (F.csc ()) [ 9; 8 ] 0.3);
        ("x", D.dense_vector ~name:"x" ~dim:9 ());
        ("z", D.dense_vector ~seed:6 ~name:"z" ~dim:8 ()) ]);
    ("Residual",
      [ ("A", sp "A" (F.csr ()) [ 8; 10 ] 0.3);
        ("x", D.dense_vector ~name:"x" ~dim:10 ());
        ("b", D.dense_vector ~seed:8 ~name:"b" ~dim:8 ()) ]);
    ("TTV",
      [ ("B", sp "B" (F.csf 3) [ 4; 5; 6 ] 0.3);
        ("c", D.dense_vector ~name:"c" ~dim:6 ()) ]);
    ("TTM",
      [ ("B", sp "B" (F.csf 3) [ 4; 5; 6 ] 0.3);
        ("C", D.dense_matrix ~name:"C" ~format:(F.cm ()) ~rows:7 ~cols:6 ()) ]);
    ("MTTKRP",
      [ ("B", sp "B" (F.csf 3) [ 4; 5; 6 ] 0.3);
        ("C", D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:5 ~cols:8 ());
        ("D", D.dense_matrix ~seed:9 ~name:"D" ~format:(F.rm ()) ~rows:6 ~cols:8 ()) ]);
    ("InnerProd",
      [ ("B", sp ~seed:10 "B" (F.ucc ()) [ 4; 5; 6 ] 0.4);
        ("C", sp ~seed:11 "C" (F.ucc ()) [ 4; 5; 6 ] 0.4) ]);
    ("Plus2",
      [ ("B", sp ~seed:12 "B" (F.ucc ()) [ 4; 5; 6 ] 0.4);
        ("C", sp ~seed:13 "C" (F.ucc ()) [ 4; 5; 6 ] 0.4) ]);
  ]

let close a b = T.max_abs_diff a b < 1e-6

let () =
  let failures = ref 0 in
  List.iter
    (fun (spec : K.spec) ->
      let pool = ref (List.assoc spec.K.kname small_inputs) in
      List.iter
        (fun (st : K.stage) ->
          let inputs =
            List.filter_map
              (fun (n, _) ->
                if n = st.K.result then None
                else Option.map (fun t -> (n, t)) (List.assoc_opt n !pool))
              st.K.formats
          in
          let tag = Printf.sprintf "%s[%s]" spec.K.kname st.K.result in
          (try
             let compiled = K.compile_stage spec st ~inputs in
             let assign = Parser.parse_assign st.K.expr in
             let expected =
               Ref.eval assign ~inputs ~result_format:st.K.result_format
             in
             let sched = K.schedule_stage spec st in
             let interp =
               Interp.run sched ~inputs ~result:st.K.result
                 ~result_format:st.K.result_format
             in
             let ok_interp = close interp expected in
             let results, report = Sim.execute compiled in
             let simmed = List.assoc st.K.result results in
             let ok_sim = close simmed expected in
             let est = Sim.estimate compiled in
             let rel a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b) in
             (* iteration counts are exact; transfer bytes may overcount
                slightly (pos slices of parents an intersection skips) *)
             let ok_est =
               rel est.Sim.compute_cycles report.Sim.compute_cycles < 0.05
               && rel est.Sim.streamed_bytes report.Sim.streamed_bytes < 0.05
               && rel est.Sim.iterations report.Sim.iterations < 0.001
             in
             (* CPU (imperative) path. *)
             let cpu_results, _tally, _func = Imp.run compiled.C.plan ~inputs in
             let ok_cpu = close (List.assoc st.K.result cpu_results) expected in
             if not ok_cpu then begin
               incr failures;
               Fmt.pr "FAIL %-22s cpu path diverges@." tag;
               Fmt.pr "  expected: %a@." T.pp expected;
               Fmt.pr "  cpu:      %a@." T.pp (List.assoc st.K.result cpu_results)
             end;
             if ok_interp && ok_sim && ok_est then
               Fmt.pr "PASS %-22s cycles=%8.1f bytes=%7.0f iters=%6.0f loc=%d@."
                 tag report.Sim.cycles report.Sim.streamed_bytes
                 report.Sim.iterations (C.spatial_loc compiled)
             else begin
               incr failures;
               Fmt.pr "FAIL %-22s interp=%b sim=%b est=%b@." tag ok_interp
                 ok_sim ok_est;
               if not ok_sim then begin
                 Fmt.pr "  expected: %a@." T.pp expected;
                 Fmt.pr "  simmed:   %a@." T.pp simmed
               end;
               if not ok_est then
                 Fmt.pr
                   "  est compute=%.1f/%.1f bytes=%.0f/%.0f iters=%.0f/%.0f@."
                   est.Sim.compute_cycles report.Sim.compute_cycles
                   est.Sim.streamed_bytes report.Sim.streamed_bytes
                   est.Sim.iterations report.Sim.iterations
             end;
             pool :=
               (st.K.result,
                match List.assoc_opt st.K.result results with
                | Some t -> t
                | None -> expected)
               :: !pool
           with e ->
             incr failures;
             Fmt.pr "ERROR %-21s %s@." tag (Printexc.to_string e)))
        spec.K.stages)
    K.all;
  if !failures = 0 then Fmt.pr "@.all kernels pass@."
  else Fmt.pr "@.%d failures@." !failures
