bin/stardustc.mli:
