bin/stardustc.ml: Arg Cmd Cmdliner Fmt Hashtbl List Stardust_capstan Stardust_core Stardust_ir Stardust_schedule Stardust_spatial Stardust_tensor Stardust_vonneumann Stardust_workloads String Term
