examples/graph_pagerank.ml: Array Float Fmt Hashtbl List Stardust_capstan Stardust_core Stardust_tensor Stardust_workloads
