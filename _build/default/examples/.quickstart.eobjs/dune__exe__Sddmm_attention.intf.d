examples/sddmm_attention.mli:
