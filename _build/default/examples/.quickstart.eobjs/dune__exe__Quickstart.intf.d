examples/quickstart.mli:
