examples/graph_pagerank.mli:
