examples/design_space.ml: Fmt List Stardust_capstan Stardust_core Stardust_tensor Stardust_workloads String
