examples/from_file.mli:
