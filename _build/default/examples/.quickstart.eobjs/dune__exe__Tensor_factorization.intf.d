examples/tensor_factorization.mli:
