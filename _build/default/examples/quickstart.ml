(* Quickstart: compile sparse matrix-vector multiplication to Capstan.

   Run with:  dune exec examples/quickstart.exe

   The flow mirrors the paper's Figure 5: declare formats, write the
   algorithm in index notation, schedule it (a scalar-workspace precompute
   plus an accelerated Reduce), compile, inspect the generated Spatial
   code, and simulate. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module S = Stardust_schedule.Schedule
module Compile = Stardust_core.Compile
module Sim = Stardust_capstan.Sim

let () =
  (* 1. Input data: an 8x8 sparse matrix in CSR and a dense vector. *)
  let a =
    T.of_entries ~name:"A" ~format:(F.csr ()) ~dims:[ 8; 8 ]
      [ ([ 0; 1 ], 2.0); ([ 0; 5 ], 1.0); ([ 1; 0 ], 3.0); ([ 2; 2 ], 4.0);
        ([ 2; 3 ], -1.0); ([ 4; 7 ], 5.0); ([ 6; 1 ], 1.5); ([ 7; 7 ], 0.5) ]
  in
  let x =
    T.of_entries ~name:"x" ~format:(F.dv ()) ~dims:[ 8 ]
      (List.init 8 (fun i -> ([ i ], float_of_int (i + 1))))
  in

  (* 2. Algorithm (index notation) + formats. *)
  let formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ] in
  let sched = Compile.schedule_of_string ~formats "y(i) = A(i,j) * x(j)" in

  (* 3. Schedule: parallelization factors, a scalar workspace for the
     row-wise reduction, and an accelerated Reduce pattern. *)
  let sched = S.set_environment sched "innerPar" 16 in
  let sched = S.set_environment sched "outerPar" 4 in
  let e = Ast.(access "A" [ "i"; "j" ] * access "x" [ "j" ]) in
  let sched = S.precompute sched e [] [] ("ws", F.make ~region:F.On_chip []) in
  let target =
    Cin.forall "j"
      (Cin.Assign { lhs = { tensor = "ws"; indices = [] }; accum = true; rhs = e })
  in
  let sched =
    S.accelerate sched target Cin.Spatial Cin.Reduction (Some (Cin.Cvar "innerPar"))
  in

  (* 4. Compile and inspect. *)
  let compiled =
    Compile.compile ~name:"quickstart_spmv" sched ~inputs:[ ("A", a); ("x", x) ]
  in
  Fmt.pr "=== Generated Spatial code ===@.%s@.@." (Compile.spatial_code compiled);

  (* 5. Simulate functionally on Capstan and read the result back. *)
  let results, report = Sim.execute compiled in
  let y = List.assoc "y" results in
  Fmt.pr "=== Simulated result ===@.%a@." T.pp y;
  Fmt.pr "cycles: %.0f  (%.2f us at 1.6 GHz)@." report.Sim.cycles
    (report.Sim.seconds *. 1e6)
