(* Tensor factorisation: one MTTKRP-based ALS step on an activity tensor.

   Run with:  dune exec examples/tensor_factorization.exe

   CP decomposition by alternating least squares repeatedly computes the
   matricised-tensor-times-Khatri-Rao product

       A(i,j) = sum_{k,l} B(i,k,l) * C(k,j) * D(l,j)

   — the data-analytics workload (Bader & Kolda) the paper cites.  Here we
   factorise a small facebook-like activity tensor: compile MTTKRP with
   Stardust, simulate it on Capstan, and verify against the reference. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module K = Stardust_core.Kernels
module Compile = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Resources = Stardust_capstan.Resources
module Ref = Stardust_vonneumann.Reference
module D = Stardust_workloads.Datasets

let rank = 8

let () =
  (* a small power-law activity tensor: time x user x user *)
  let b = D.facebook_like ~dims:(24, 96, 96) ~density:2e-3 ~format:(F.csf 3) () in
  let dims = T.dims b in
  Fmt.pr "activity tensor: %dx%dx%d, %d interactions@." dims.(0) dims.(1)
    dims.(2) (T.nnz b);
  let c = D.dense_matrix ~seed:3 ~name:"C" ~format:(F.rm ()) ~rows:dims.(1)
      ~cols:rank () in
  let d = D.dense_matrix ~seed:4 ~name:"D" ~format:(F.rm ()) ~rows:dims.(2)
      ~cols:rank () in

  let spec = K.mttkrp in
  let st = List.hd spec.K.stages in
  let inputs = [ ("B", T.rename "B" b); ("C", c); ("D", d) ] in
  let compiled = K.compile_stage spec st ~inputs in

  Fmt.pr "@.MTTKRP compiled: %d lines of Spatial@." (Compile.spatial_loc compiled);
  Fmt.pr "resources: %a@." Resources.pp
    (Resources.count Stardust_capstan.Arch.default compiled);

  let results, report = Sim.execute compiled in
  let factor = List.assoc "A" results in
  let expected =
    Ref.eval
      (Stardust_ir.Parser.parse_assign st.K.expr)
      ~inputs ~result_format:(F.rm ())
  in
  Fmt.pr "@.factor update matches reference: %b@." (T.equal_approx factor expected);
  Fmt.pr "factor matrix: %dx%d, frobenius^2 = %.3f@."
    dims.(0) rank
    (T.fold_nonzeros (fun acc _ v -> acc +. (v *. v)) 0.0 factor);
  Fmt.pr "one ALS-step MTTKRP on Capstan: %.0f cycles (%.2f us)@."
    report.Sim.cycles (report.Sim.seconds *. 1e6)
