(* Design-space exploration with the environment command (section 5.2).

   Run with:  dune exec examples/design_space.exe

   The paper's environment command exposes backend configuration —
   innerPar, outerPar — to the scheduling layer, so an end programmer (or
   auto-scheduler) can sweep hardware schedules without touching Spatial.
   This example sweeps both factors for SDDMM, reporting simulated cycles
   and chip resources for every point, and flags the paper's chosen
   configuration (Table 5: Par = 12). *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Resources = Stardust_capstan.Resources
module D = Stardust_workloads.Datasets

let () =
  let b = D.random_matrix ~seed:5 ~name:"B" ~format:(F.csr ()) ~rows:512
      ~cols:512 ~density:0.02 () in
  let c = D.dense_matrix ~seed:6 ~name:"C" ~format:(F.rm ()) ~rows:512 ~cols:32 () in
  let d = D.dense_matrix ~seed:7 ~name:"D" ~format:(F.rm ()) ~rows:512 ~cols:32 () in
  let inputs = [ ("B", b); ("C", c); ("D", d) ] in
  Fmt.pr "SDDMM design space: B 512x512 (%d nnz), rank 32@.@." (T.nnz b);
  Fmt.pr "%8s %8s %12s %8s %8s %8s %8s@." "outerPar" "innerPar" "cycles" "PCU"
    "PMU" "MC" "limit";
  Fmt.pr "%s@." (String.make 68 '-');
  let best = ref (infinity, 0, 0) in
  List.iter
    (fun op ->
      List.iter
        (fun ip ->
          let spec = { K.sddmm with K.outer_par = op; K.inner_par = ip } in
          let st = List.hd spec.K.stages in
          let compiled = K.compile_stage spec st ~inputs in
          let r = Sim.estimate compiled in
          let u = Resources.count Arch.default compiled in
          if r.Sim.cycles < (let c, _, _ = !best in c) then best := (r.Sim.cycles, op, ip);
          Fmt.pr "%8d %8d %12.0f %8d %8d %8d %8s%s@." op ip r.Sim.cycles
            u.Resources.pcu u.Resources.pmu u.Resources.mc u.Resources.limiting
            (if op = 12 && ip = 16 then "   <- paper's Table 5 point" else ""))
        [ 4; 8; 16 ])
    [ 1; 2; 4; 8; 12; 16 ];
  let cycles, op, ip = !best in
  Fmt.pr "@.best point: outerPar=%d innerPar=%d at %.0f cycles@." op ip cycles;
  Fmt.pr "(design-space exploration with high-level schedules only — no@.";
  Fmt.pr " Spatial or Capstan knowledge needed, as section 5.2 argues)@."
