(* Graph analytics as sparse linear algebra: PageRank by repeated SpMV.

   Run with:  dune exec examples/graph_pagerank.exe

   Each PageRank iteration is r' = d * (A^T r) + (1-d)/n, i.e. one sparse
   matrix-vector product on the column-normalised adjacency matrix — the
   long-tail "graph algorithms as linear algebra" workload the paper's
   introduction motivates (GraphBLAS).  The kernel is compiled once; each
   iteration re-runs the same Capstan configuration with a new vector. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module Coo = Stardust_tensor.Coo
module Prng = Stardust_workloads.Prng

let n = 64
let damping = 0.85
let iterations = 10

(* A small scale-free-ish directed graph, column-normalised. *)
let graph () =
  let rng = Prng.create 17 in
  let edges = Hashtbl.create 256 in
  for v = 1 to n - 1 do
    (* preferential attachment flavour: link to low-numbered hubs *)
    let deg = 2 + Prng.int rng 3 in
    for _ = 1 to deg do
      let u = Prng.int rng (max 1 (v / 2 + 1)) in
      if u <> v then Hashtbl.replace edges (u, v) ()
    done
  done;
  (* column-normalise: A(i,j) = 1/outdeg(j) for edge j -> i *)
  let outdeg = Array.make n 0 in
  Hashtbl.iter (fun (_, j) () -> outdeg.(j) <- outdeg.(j) + 1) edges;
  let coo = Coo.create [| n; n |] in
  Hashtbl.iter
    (fun (i, j) () -> Coo.add coo [| i; j |] (1.0 /. float_of_int outdeg.(j)))
    edges;
  T.of_coo ~name:"A" ~format:(F.csr ()) coo

let () =
  let a = graph () in
  Fmt.pr "graph: %d vertices, %d edges@." n (T.nnz a);
  let spec = K.spmv in
  let st = List.hd spec.K.stages in
  let rank = ref (Array.make n (1.0 /. float_of_int n)) in
  let total_cycles = ref 0.0 in
  for it = 1 to iterations do
    let x =
      T.of_entries ~name:"x" ~format:(F.dv ()) ~dims:[ n ]
        (List.init n (fun i -> ([ i ], !rank.(i))))
    in
    let compiled = K.compile_stage spec st ~inputs:[ ("A", a); ("x", x) ] in
    let results, report = Sim.execute compiled in
    let y = T.to_dense (List.assoc "y" results) in
    let base = (1.0 -. damping) /. float_of_int n in
    let next = Array.map (fun v -> base +. (damping *. v)) y in
    let delta =
      Array.fold_left max 0.0
        (Array.mapi (fun i v -> Float.abs (v -. !rank.(i))) next)
    in
    rank := next;
    total_cycles := !total_cycles +. report.Sim.cycles;
    Fmt.pr "iteration %2d: delta=%.6f  (%.0f cycles)@." it delta report.Sim.cycles
  done;
  (* top-5 vertices *)
  let ranked = Array.mapi (fun i v -> (i, v)) !rank in
  Array.sort (fun (_, a) (_, b) -> compare b a) ranked;
  Fmt.pr "@.top vertices by PageRank:@.";
  Array.iteri
    (fun k (v, r) -> if k < 5 then Fmt.pr "  #%d vertex %2d  %.4f@." (k + 1) v r)
    ranked;
  Fmt.pr "@.total simulated Capstan cycles: %.0f (%.1f us)@." !total_cycles
    (!total_cycles /. 1.6e9 *. 1e6)
