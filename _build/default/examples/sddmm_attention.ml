(* SDDMM for sparse attention — the paper's running example (section 4)
   on a machine-learning-shaped workload.

   Run with:  dune exec examples/sddmm_attention.exe

   Sampled dense-dense matrix multiplication computes attention scores
   only at the positions a sparsity mask allows:

       A(q, k) = M(q, k) * Q(q, d) * K(k, d)

   where M is a sparse mask (here: local + strided attention, the
   Longformer/BigBird pattern), and Q/K are dense query/key matrices.
   Stardust compiles it to a streaming dataflow configuration (Figure 4b):
   the mask streams row by row, Q/K rows are staged in scratchpads, and a
   Reduce pattern contracts the feature dimension. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module K = Stardust_core.Kernels
module Compile = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Ref = Stardust_vonneumann.Reference
module D = Stardust_workloads.Datasets
module Coo = Stardust_tensor.Coo

let seq_len = 256
let heads_dim = 32
let window = 4
let stride = 64

(* Local + strided sparse attention mask. *)
let attention_mask () =
  let coo = Coo.create [| seq_len; seq_len |] in
  for q = 0 to seq_len - 1 do
    for w = -window to window do
      let k = q + w in
      if k >= 0 && k < seq_len then Coo.add coo [| q; k |] 1.0
    done;
    let s = ref 0 in
    while !s < seq_len do
      Coo.add coo [| q; !s |] 1.0;
      s := !s + stride
    done
  done;
  T.of_coo ~name:"B" ~format:(F.csr ()) coo

let () =
  let mask = attention_mask () in
  let q = D.dense_matrix ~seed:1 ~name:"C" ~format:(F.rm ()) ~rows:seq_len
      ~cols:heads_dim () in
  let k = D.dense_matrix ~seed:2 ~name:"D" ~format:(F.rm ()) ~rows:seq_len
      ~cols:heads_dim () in
  Fmt.pr "mask: %d x %d, %d allowed positions (%.2f%% dense)@." seq_len seq_len
    (T.nnz mask) (100.0 *. T.density mask);

  (* The SDDMM kernel spec is the paper's: scalar-workspace precompute and
     an accelerated Reduce over the feature dimension. *)
  let spec = K.sddmm in
  let st = List.hd spec.K.stages in
  let inputs = [ ("B", mask); ("C", q); ("D", k) ] in
  let compiled = K.compile_stage spec st ~inputs in
  Fmt.pr "@.compiled SDDMM: %d lines of Spatial (from %d input lines)@."
    (Compile.spatial_loc compiled) (Compile.input_loc compiled);

  (* Check the scores against the dense reference. *)
  let results, _report = Sim.execute compiled in
  let scores = List.assoc "A" results in
  let expected =
    Ref.eval
      (Stardust_ir.Parser.parse_assign st.K.expr)
      ~inputs ~result_format:(F.csr ())
  in
  Fmt.pr "scores match dense reference: %b@." (T.equal_approx scores expected);
  Fmt.pr "attention scores computed at %d positions@." (T.nnz scores);

  (* Timing across memory systems (the Figure 12 story in miniature). *)
  List.iter
    (fun (name, config) ->
      let r = Sim.estimate ~config compiled in
      Fmt.pr "%-22s %10.0f cycles  (%.2f us)@." name r.Sim.cycles
        (r.Sim.seconds *. 1e6))
    [ ("Capstan (HBM2E)", Sim.default_config);
      ("Capstan (DDR4)",
       { Sim.arch = Stardust_capstan.Arch.default; dram = Stardust_capstan.Dram.ddr4 });
      ("Capstan (ideal)", Sim.ideal_config) ]
