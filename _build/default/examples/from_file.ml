(* Running Stardust on data from disk (Matrix Market / FROSTT).

   Run with:  dune exec examples/from_file.exe [matrix.mtx]

   Loads a SuiteSparse-style .mtx file (or writes and reloads a synthetic
   one when no path is given), auto-schedules SpMV on it, and simulates.
   This is the path for running the benchmark suite on the paper's
   original inputs when they are available. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Io = Stardust_tensor.Tensor_io
module Auto = Stardust_core.Autoschedule
module Sim = Stardust_capstan.Sim
module Ref = Stardust_vonneumann.Reference
module D = Stardust_workloads.Datasets

let () =
  let path, cleanup =
    if Array.length Sys.argv > 1 then (Sys.argv.(1), false)
    else begin
      (* no input given: write a synthetic matrix and read it back *)
      let t = D.trefethen_like ~dim:512 ~format:(F.csr ()) () in
      let path = Filename.temp_file "stardust_demo" ".mtx" in
      Io.write_matrix_market t path;
      Fmt.pr "(no input file given; wrote a synthetic Trefethen matrix to %s)@."
        path;
      (path, true)
    end
  in
  let a = T.rename "A" (Io.read_matrix_market ~name:"A" ~format:(F.csr ()) path) in
  if cleanup then Sys.remove path;
  let dims = T.dims a in
  Fmt.pr "loaded %s: %dx%d, %d nonzeros (%.2e dense)@." path dims.(0) dims.(1)
    (T.nnz a) (T.density a);
  let x = D.dense_vector ~name:"x" ~dim:dims.(1) () in
  let formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ] in
  let compiled =
    Auto.compile ~name:"spmv_from_file" ~formats
      ~inputs:[ ("A", a); ("x", x) ]
      "y(i) = A(i,j) * x(j)"
  in
  let est = Sim.estimate compiled in
  Fmt.pr "auto-scheduled SpMV: %.0f cycles on Capstan (HBM2E), %.2f us@."
    est.Sim.cycles (est.Sim.seconds *. 1e6);
  (* verify on a functional run when the matrix is small enough *)
  if T.nnz a <= 100_000 then begin
    let results, _ = Sim.execute compiled in
    let expected =
      Ref.eval
        (Stardust_ir.Parser.parse_assign "y(i) = A(i,j) * x(j)")
        ~inputs:[ ("A", a); ("x", x) ] ~result_format:(F.dv ())
    in
    Fmt.pr "functional simulation matches reference: %b@."
      (T.equal_approx (List.assoc "y" results) expected)
  end
