(* Design-space exploration with the autotuner (section 5.2).

   Run with:  dune exec examples/design_space.exe

   The paper's environment command exposes backend configuration —
   innerPar, outerPar — to the scheduling layer, so an end programmer (or
   auto-scheduler) can sweep hardware schedules without touching Spatial.
   The [Stardust_explore] library automates that sweep: it enumerates the
   legal schedule points around the autoscheduler's heuristic seed, prunes
   the ones that cannot be placed on the chip, costs the survivors on a
   pool of parallel domains, and reports the Pareto frontier over
   (simulated cycles, chip resources).  This example runs it on SDDMM and
   flags the paper's chosen configuration (Table 5: outerPar = 12,
   innerPar = 16). *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module Point = Stardust_explore.Point
module D = Stardust_workloads.Datasets

let () =
  let b = D.random_matrix ~seed:5 ~name:"B" ~format:(F.csr ()) ~rows:512
      ~cols:512 ~density:0.02 () in
  let c = D.dense_matrix ~seed:6 ~name:"C" ~format:(F.rm ()) ~rows:512 ~cols:32 () in
  let d = D.dense_matrix ~seed:7 ~name:"D" ~format:(F.rm ()) ~rows:512 ~cols:32 () in
  let inputs = [ ("B", b); ("C", c); ("D", d) ] in
  Fmt.pr "SDDMM design space: B 512x512 (%d nnz), rank 32@.@." (T.nnz b);
  let st = List.hd K.sddmm.K.stages in
  let problem =
    Eval.problem_of_string ~name:"sddmm" ~formats:st.K.formats ~inputs
      st.K.expr
  in
  let r = Explore.run problem in
  Fmt.pr "%a" Explore.pp_result r;
  (match r.Explore.best with
  | Some best
    when best.Eval.point.Point.outer_par = 12
         && best.Eval.point.Point.inner_par = 16 ->
      Fmt.pr "@.the best point is the paper's Table 5 configuration@.";
      Fmt.pr "(outerPar=12, innerPar=16)@."
  | Some best ->
      Fmt.pr "@.best point: %s (paper's Table 5 point: op=12 ip=16)@."
        (Point.to_string best.Eval.point)
  | None -> ());
  Fmt.pr "@.(design-space exploration with high-level schedules only — no@.";
  Fmt.pr " Spatial or Capstan knowledge needed, as section 5.2 argues)@."
