(* Running Stardust on data from disk (Matrix Market / FROSTT).

   Run with:  dune exec examples/from_file.exe [matrix.mtx]

   Loads a SuiteSparse-style .mtx file (the committed bcsstk_small.mtx
   example when no path is given) through the streaming ingestion layer
   — single bounded-memory pass, explicit entry/byte budgets, stable
   E02xx diagnostics on malformed input — then auto-schedules SpMV on it
   and simulates.  This is the path for running the benchmark suite on
   the paper's original inputs when they are available. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Auto = Stardust_core.Autoschedule
module Sim = Stardust_capstan.Sim
module Ref = Stardust_vonneumann.Reference
module D = Stardust_workloads.Datasets
module Ingest = Stardust_ingest.Ingest
module Diag = Stardust_diag.Diag

let default_path = "examples/data/bcsstk_small.mtx"

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else begin
      Fmt.pr "(no input file given; using the committed %s)@." default_path;
      default_path
    end
  in
  (* Real files are untrusted: cap what one load may cost, and render
     the structured E02xx diagnostics a damaged file produces. *)
  let budget = Ingest.budget ~max_nnz:5_000_000 ~max_bytes:200_000_000 () in
  let a =
    match Ingest.read_file_result ~name:"A" ~budget ~format:(F.csr ()) path with
    | Ok t -> t
    | Error ds ->
        List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) ds;
        exit 1
  in
  let dims = T.dims a in
  Fmt.pr "loaded %s: %dx%d, %d nonzeros (%.2e dense)@." path dims.(0) dims.(1)
    (T.nnz a) (T.density a);
  let x = D.dense_vector ~name:"x" ~dim:dims.(1) () in
  let formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ] in
  let compiled =
    Auto.compile ~name:"spmv_from_file" ~formats
      ~inputs:[ ("A", a); ("x", x) ]
      "y(i) = A(i,j) * x(j)"
  in
  let est = Sim.estimate compiled in
  Fmt.pr "auto-scheduled SpMV: %.0f cycles on Capstan (HBM2E), %.2f us@."
    est.Sim.cycles (est.Sim.seconds *. 1e6);
  (* verify on a functional run when the matrix is small enough *)
  if T.nnz a <= 100_000 then begin
    let results, _ = Sim.execute compiled in
    let expected =
      Ref.eval
        (Stardust_ir.Parser.parse_assign "y(i) = A(i,j) * x(j)")
        ~inputs:[ ("A", a); ("x", x) ] ~result_format:(F.dv ())
    in
    Fmt.pr "functional simulation matches reference: %b@."
      (T.equal_approx (List.assoc "y" results) expected)
  end
